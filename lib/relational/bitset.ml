(* Packed bit vector over 63-bit words. The predicate kernels build one
   of these per conjunct and combine them with whole-word boolean
   operations; the tail bits of the last word are kept zero so that
   word-wise combination never sets a bit past [len]. *)

type t = { words : int array; len : int }

let width = 63

let nwords len = (len + width - 1) / width

let create len = { words = Array.make (nwords len) 0; len }

(* Mask keeping only the valid bits of the last word. *)
let tail_mask len =
  let r = len mod width in
  if r = 0 then -1 else (1 lsl r) - 1

let full len =
  let t = { words = Array.make (nwords len) (-1); len } in
  let n = nwords len in
  if n > 0 then t.words.(n - 1) <- t.words.(n - 1) land tail_mask len;
  t

let length t = t.len

let get t i = (t.words.(i / width) lsr (i mod width)) land 1 = 1

let set t i = t.words.(i / width) <- t.words.(i / width) lor (1 lsl (i mod width))

let clear t i =
  t.words.(i / width) <- t.words.(i / width) land lnot (1 lsl (i mod width))

let init len f =
  let t = create len in
  for wi = 0 to nwords len - 1 do
    let base = wi * width in
    let hi = min (width - 1) (len - 1 - base) in
    let acc = ref 0 in
    for b = 0 to hi do
      acc := !acc lor (Bool.to_int (f (base + b)) lsl b)
    done;
    t.words.(wi) <- !acc
  done;
  t

let check_len a b op =
  if a.len <> b.len then invalid_arg ("Bitset." ^ op ^ ": length mismatch")

let inter_into dst src =
  check_len dst src "inter_into";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let union_into dst src =
  check_len dst src "union_into";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let complement_into t =
  let n = nwords t.len in
  for i = 0 to n - 1 do
    t.words.(i) <- lnot t.words.(i)
  done;
  if n > 0 then t.words.(n - 1) <- t.words.(n - 1) land tail_mask t.len

let rec ntz_loop x acc = if x land 1 = 1 then acc else ntz_loop (x lsr 1) (acc + 1)

let iter f t =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref t.words.(wi) in
    let base = wi * width in
    while !w <> 0 do
      let b = ntz_loop !w 0 in
      f (base + b);
      w := !w land (!w - 1)
    done
  done

let count t =
  let c = ref 0 in
  iter (fun _ -> incr c) t;
  !c

let to_array t =
  let n = count t in
  let out = Array.make n 0 in
  let k = ref 0 in
  iter
    (fun i ->
      out.(!k) <- i;
      incr k)
    t;
  out

type tuple = Value.t array

type t = { schema : Schema.t; tuples : tuple array }

let check_tuple schema tup =
  if Array.length tup <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Relation: tuple arity %d, schema %s has arity %d"
         (Array.length tup) (Schema.name schema) (Schema.arity schema));
  Array.iteri
    (fun i v ->
      match (v, Schema.attr_type schema i) with
      | Value.Null, _ -> ()
      | Value.Int _, Schema.T_int -> ()
      | Value.Str _, Schema.T_string -> ()
      | (Value.Int _ | Value.Str _ | Value.Ratio _), _ ->
          invalid_arg
            (Printf.sprintf "Relation: type mismatch at %s.%s"
               (Schema.name schema)
               (Schema.attr_name schema i)))
    tup

let of_array schema tuples =
  Array.iter (check_tuple schema) tuples;
  { schema; tuples }

let make schema tuples = of_array schema (Array.of_list tuples)
let schema t = t.schema
let cardinality t = Array.length t.tuples
let tuple t i = t.tuples.(i)
let tuples t = t.tuples
let get t row attr = t.tuples.(row).(Schema.index_of t.schema attr)

let replace_tuple t i tup =
  check_tuple t.schema tup;
  let tuples = Array.copy t.tuples in
  tuples.(i) <- tup;
  { t with tuples }

let drop_tuple t i =
  let n = Array.length t.tuples in
  assert (i >= 0 && i < n);
  let tuples =
    Array.init (n - 1) (fun j -> if j < i then t.tuples.(j) else t.tuples.(j + 1))
  in
  { t with tuples }

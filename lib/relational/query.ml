type agg_fn =
  | Count_star
  | Count of Expr.t
  | Count_distinct of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type select_item =
  | Field of Expr.t * string
  | Aggregate of agg_fn * string

type from_item = { table : string; alias : string option }

type t = {
  name : string;
  select : select_item list;
  distinct : bool;
  from : from_item list;
  where : Expr.t option;
  group_by : Expr.t list;
  limit : int option;
}

let parse_from entry =
  match String.split_on_char ' ' (String.trim entry) with
  | [ table ] -> { table; alias = None }
  | [ table; alias ] -> { table; alias = Some alias }
  | _ -> invalid_arg (Printf.sprintf "Query.make: bad FROM entry %S" entry)

let make ~name ?(distinct = false) ?where ?(group_by = []) ?limit ~from select =
  if from = [] then invalid_arg "Query.make: empty FROM";
  if select = [] then invalid_arg "Query.make: empty SELECT";
  (match limit with
  | Some k when k < 0 -> invalid_arg "Query.make: negative LIMIT"
  | Some _ | None -> ());
  { name; select; distinct; from = List.map parse_from from; where; group_by; limit }

let star db t =
  let multi = List.length t.from > 1 in
  List.concat_map
    (fun { table; alias } ->
      let schema = Relation.schema (Database.relation db table) in
      let qualifier = Option.value alias ~default:table in
      List.map
        (fun (attr, _) ->
          let expr =
            if multi then Expr.col ~table:qualifier attr else Expr.col attr
          in
          Field (expr, attr))
        (Schema.attrs schema))
    t.from

let aggregates t =
  List.filter_map
    (function Aggregate (fn, _) -> Some fn | Field _ -> None)
    t.select

let has_aggregate t = aggregates t <> []

let tables t =
  List.sort_uniq String.compare
    (List.map (fun { table; _ } -> String.lowercase_ascii table) t.from)

let agg_sql fn =
  match fn with
  | Count_star -> "count(*)"
  | Count e -> Printf.sprintf "count(%s)" (Expr.to_sql e)
  | Count_distinct e -> Printf.sprintf "count(distinct %s)" (Expr.to_sql e)
  | Sum e -> Printf.sprintf "sum(%s)" (Expr.to_sql e)
  | Avg e -> Printf.sprintf "avg(%s)" (Expr.to_sql e)
  | Min e -> Printf.sprintf "min(%s)" (Expr.to_sql e)
  | Max e -> Printf.sprintf "max(%s)" (Expr.to_sql e)

let to_sql t =
  let item = function
    | Field (e, _) -> Expr.to_sql e
    | Aggregate (fn, _) -> agg_sql fn
  in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if t.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map item t.select));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun { table; alias } ->
            match alias with None -> table | Some a -> table ^ " " ^ a)
          t.from));
  (match t.where with
  | Some e ->
      Buffer.add_string buf " WHERE ";
      Buffer.add_string buf (Expr.to_sql e)
  | None -> ());
  (match t.group_by with
  | [] -> ()
  | keys ->
      Buffer.add_string buf " GROUP BY ";
      Buffer.add_string buf (String.concat ", " (List.map Expr.to_sql keys)));
  (match t.limit with
  | Some k -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" k)
  | None -> ());
  Buffer.contents buf

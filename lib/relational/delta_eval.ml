(* --- engine selection ------------------------------------------------ *)

type engine = Row | Columnar | Check

let engine_name = function
  | Row -> "row"
  | Columnar -> "columnar"
  | Check -> "check"

let engine_of_string s =
  match String.lowercase_ascii s with
  | "row" -> Some Row
  | "columnar" -> Some Columnar
  | "check" -> Some Check
  | _ -> None

(* Fail fast on an unknown QP_REL_ENGINE: a typo silently falling back
   to the default would defeat the point of asking for a cross-check. *)
let initial_engine =
  match Sys.getenv_opt "QP_REL_ENGINE" with
  | None -> Columnar
  | Some s -> (
      match engine_of_string s with
      | Some e -> e
      | None ->
          Printf.eprintf
            "QP_REL_ENGINE=%s is not a relational engine (expected row, \
             columnar or check)\n"
            s;
          exit 2)

let engine_ref = ref initial_engine
let default_engine () = !engine_ref
let set_default_engine e = engine_ref := e

let mismatch_count = Atomic.make 0
let check_mismatches () = Atomic.get mismatch_count
let reset_check_mismatches () = Atomic.set mismatch_count 0

(* --- strategies ------------------------------------------------------ *)

type group = { acc : Agg_state.acc; mutable base_out : Value.t array option }

type grouped_state = {
  groups : (Value.t array, group) Hashtbl.t;
  global : bool;
}

type strategy =
  | Rowwise
  | Rowwise_distinct of (Value.t array, int) Hashtbl.t
  | Grouped of grouped_state
  | Limited of { k : int; base_rows : Value.t array array }
      (* plain LIMIT-k query: the full sorted projected multiset; a
         delta changes the answer iff it changes the first k rows *)
  | Fallback

type backend = B_row of Eval.prejoined | B_col of Col_eval.t

type core = {
  db : Database.t;
  q : Query.t;
  plan : Eval.plan;
  backend : backend;
  positions : (string, int list) Hashtbl.t;  (** table name -> FROM levels *)
  strategy : strategy;
  referenced : bool array array;
      (** per level, per column: does the query read this column?
          Powers the columnar engine's unreferenced-cell short circuit. *)
  rels : (string, Relation.t) Hashtbl.t;
      (** per-delta relation resolution cache (skips the lowercasing
          name lookup inside {!Database.relation} on every delta) *)
  mutable base : Result_set.t option;
}

type t = {
  engine : engine;
  main : core;
  check_row : core option;
      (** in check mode, the row-engine oracle evaluated alongside *)
}

let query t = t.main.q

let core_base core =
  match core.base with
  | Some r -> r
  | None ->
      let r = Eval.run_plan core.plan core.db in
      core.base <- Some r;
      r

let base_result t = core_base t.main

let strategy_name_of = function
  | Rowwise -> "rowwise"
  | Rowwise_distinct _ -> "rowwise-distinct"
  | Grouped _ -> "grouped"
  | Limited _ -> "limited"
  | Fallback -> "fallback"

let strategy_name t = strategy_name_of t.main.strategy

(* Grouped answers stay per-key comparable only when every selected
   field is itself a group key; then output rows are pairwise distinct
   and a changed group cannot be masked by another group's identical
   row. *)
let fields_are_group_keys q =
  List.for_all
    (function
      | Query.Field (e, _) -> List.exists (fun g -> g = e) q.Query.group_by
      | Query.Aggregate _ -> true)
    q.Query.select

let table_positions q =
  let positions = Hashtbl.create 4 in
  List.iteri
    (fun i { Query.table; _ } ->
      let key = String.lowercase_ascii table in
      let cur = Option.value (Hashtbl.find_opt positions key) ~default:[] in
      Hashtbl.replace positions key (cur @ [ i ]))
    q.Query.from;
  positions

(* Which (level, column) cells can influence the answer: every column
   referenced by the WHERE clause, the select items, the GROUP BY keys
   or the aggregate arguments. A Cell_change on an unreferenced column
   cannot change the answer (row multiplicities are unchanged and no
   output or predicate reads the cell). *)
let referenced_columns plan q =
  let env_schemas = Eval.from_env plan in
  let refs =
    Array.map (fun (_, s) -> Array.make (Schema.arity s) false) env_schemas
  in
  let mark e =
    List.iter
      (fun cr ->
        let lvl, col = Expr.resolve env_schemas cr in
        refs.(lvl).(col) <- true)
      (Expr.columns e)
  in
  Option.iter mark q.Query.where;
  List.iter
    (function
      | Query.Field (e, _) -> mark e
      | Query.Aggregate (fn, _) -> (
          match fn with
          | Query.Count_star -> ()
          | Query.Count e | Query.Count_distinct e | Query.Sum e
          | Query.Avg e | Query.Min e | Query.Max e ->
              mark e))
    q.Query.select;
  List.iter mark q.Query.group_by;
  refs

let is_plain q =
  (not (Query.has_aggregate q))
  && q.Query.group_by = [] && not q.Query.distinct

let choose_strategy plan q envs positions =
  let self_join =
    Hashtbl.fold (fun _ ps b -> b || List.length ps > 1) positions false
  in
  if self_join then Fallback
  else
    match q.Query.limit with
    | Some k when is_plain q ->
        let base_rows =
          Array.of_list (List.map (Eval.project plan) envs)
        in
        Array.sort Result_set.compare_rows base_rows;
        Limited { k; base_rows }
    | Some _ -> Fallback
    | None ->
        if Query.has_aggregate q || q.Query.group_by <> [] then
          if q.Query.distinct then Fallback
          else if
            q.Query.group_by = []
            && List.exists
                 (function Query.Field _ -> true | Query.Aggregate _ -> false)
                 q.Query.select
          then Fallback
          else if not (fields_are_group_keys q) then Fallback
          else begin
            let groups = Hashtbl.create 64 in
            List.iter
              (fun env ->
                let key = Eval.group_key plan env in
                let g =
                  match Hashtbl.find_opt groups key with
                  | Some g -> g
                  | None ->
                      let g =
                        {
                          acc = Agg_state.create (Eval.agg_kinds plan);
                          base_out = None;
                        }
                      in
                      Hashtbl.add groups key g;
                      g
                in
                Agg_state.add g.acc (Eval.agg_row plan env))
              envs;
            Grouped { groups; global = q.Query.group_by = [] }
          end
        else if q.Query.distinct then begin
          let counts = Hashtbl.create 256 in
          List.iter
            (fun env ->
              let row = Eval.project plan env in
              let cur = Option.value (Hashtbl.find_opt counts row) ~default:0 in
              Hashtbl.replace counts row (cur + 1))
            envs;
          Rowwise_distinct counts
        end
        else Rowwise

let prepare_core ~columnar db q plan positions =
  let backend =
    if columnar then B_col (Col_eval.prepare plan db)
    else B_row (Eval.precompute_levels plan db)
  in
  let self_join =
    Hashtbl.fold (fun _ ps b -> b || List.length ps > 1) positions false
  in
  let needs_envs =
    (not self_join)
    && ((Query.has_aggregate q || q.Query.group_by <> [] || q.Query.distinct)
        && q.Query.limit = None
       || (is_plain q && q.Query.limit <> None))
  in
  let envs =
    if not needs_envs then []
    else
      match backend with
      | B_row prejoined -> Eval.join_prejoined plan prejoined
      | B_col col -> Col_eval.join_prejoined col
  in
  let strategy = choose_strategy plan q envs positions in
  (* The envs were just enumerated; hand them to the columnar engine so
     its per-delta emptiness pre-check needn't enumerate them again. *)
  (match backend with
  | B_col col when needs_envs -> Col_eval.seed_participating col envs
  | _ -> ());
  {
    db;
    q;
    plan;
    backend;
    positions;
    strategy;
    referenced = referenced_columns plan q;
    rels = Hashtbl.create 4;
    base = None;
  }

let prepare ?engine db q =
  let engine = Option.value engine ~default:(default_engine ()) in
  let plan = Eval.prepare db q in
  let positions = table_positions q in
  let main =
    prepare_core ~columnar:(engine <> Row) db q plan positions
  in
  let check_row =
    if engine = Check then
      Some (prepare_core ~columnar:false db q plan positions)
    else None
  in
  { engine; main; check_row }

(* --- per-delta contribution ----------------------------------------- *)

let contributions core level tup_opt =
  match tup_opt with
  | None -> []
  | Some tup -> (
      match core.backend with
      | B_row prejoined -> Eval.join_fixed core.plan prejoined (level, tup)
      | B_col col -> Col_eval.join_fixed col (level, tup))

let multiset_equal rows_a rows_b =
  List.length rows_a = List.length rows_b
  &&
  let sort l = List.sort Result_set.compare_rows l in
  List.for_all2
    (fun a b -> Result_set.compare_rows a b = 0)
    (sort rows_a) (sort rows_b)

let rowwise_differs core removed added =
  let proj envs = List.map (Eval.project core.plan) envs in
  not (multiset_equal (proj removed) (proj added))

let distinct_differs core counts removed added =
  let net = Hashtbl.create 8 in
  let bump env d =
    let row = Eval.project core.plan env in
    let cur = Option.value (Hashtbl.find_opt net row) ~default:0 in
    Hashtbl.replace net row (cur + d)
  in
  List.iter (fun env -> bump env (-1)) removed;
  List.iter (fun env -> bump env 1) added;
  Hashtbl.fold
    (fun row d acc ->
      acc
      ||
      let base = Option.value (Hashtbl.find_opt counts row) ~default:0 in
      base > 0 <> (base + d > 0))
    net false

let group_base_out g =
  match g.base_out with
  | Some out -> out
  | None ->
      let out = Agg_state.output g.acc in
      g.base_out <- Some out;
      out

let grouped_differs core gs removed added =
  let by_key = Hashtbl.create 8 in
  let file d env =
    let key = Eval.group_key core.plan env in
    let rem, add =
      Option.value (Hashtbl.find_opt by_key key) ~default:([], [])
    in
    let row = Eval.agg_row core.plan env in
    if d < 0 then Hashtbl.replace by_key key (row :: rem, add)
    else Hashtbl.replace by_key key (rem, row :: add)
  in
  List.iter (file (-1)) removed;
  List.iter (file 1) added;
  let arr_equal a b =
    Array.length a = Array.length b && Array.for_all2 Value.equal a b
  in
  Hashtbl.fold
    (fun key (rem, add) acc ->
      acc
      ||
      match Hashtbl.find_opt gs.groups key with
      | Some g -> (
          match Agg_state.output_with_delta g.acc ~removed:rem ~added:add with
          | None ->
              if gs.global then
                (* A global aggregate never loses its single output row;
                   it degrades to the empty-input row. *)
                not
                  (arr_equal (group_base_out g)
                     (Agg_state.empty_output (Eval.agg_kinds core.plan)))
              else true
          | Some out -> not (arr_equal (group_base_out g) out))
      | None ->
          (* A brand-new group key: only additions can reach it. *)
          add <> []
          &&
          if gs.global then
            let acc0 = Agg_state.create (Eval.agg_kinds core.plan) in
            List.iter (Agg_state.add acc0) add;
            not
              (arr_equal (Agg_state.output acc0)
                 (Agg_state.empty_output (Eval.agg_kinds core.plan)))
          else true)
    by_key false

(* LIMIT-k on a plain query truncates the canonically sorted projected
   multiset; the answer changes iff the first k rows of that sorted
   multiset change. Walk the base rows (minus removals, merged with
   additions) against the original first k — O(k + |delta rows|). *)
let limited_differs core k base_rows removed added =
  let proj envs =
    List.sort Result_set.compare_rows
      (List.map (Eval.project core.plan) envs)
  in
  let rem = ref (proj removed) and add = ref (proj added) in
  let nb = Array.length base_rows in
  let new_len = nb - List.length !rem + List.length !add in
  let kept = min k nb and kept' = min k new_len in
  if kept <> kept' then true
  else begin
    (* Next base row surviving removal. Removed rows are contributions
       of a stored tuple, so each occurs in the base multiset; both
       sequences are sorted, so equal heads cancel. *)
    let bi = ref 0 in
    let rec base_next () =
      if !bi >= nb then None
      else
        match !rem with
        | r :: rest when Result_set.compare_rows r base_rows.(!bi) = 0 ->
            incr bi;
            rem := rest;
            base_next ()
        | _ -> Some base_rows.(!bi)
    in
    let differs = ref false in
    let taken = ref 0 in
    while (not !differs) && !taken < kept' do
      let next =
        match (base_next (), !add) with
        | None, [] -> None (* unreachable: kept' rows always exist *)
        | Some b, [] ->
            incr bi;
            Some b
        | None, a :: rest ->
            add := rest;
            Some a
        | Some b, a :: rest ->
            if Result_set.compare_rows b a <= 0 then begin
              incr bi;
              Some b
            end
            else begin
              add := rest;
              Some a
            end
      in
      (match next with
      | None -> differs := true
      | Some row ->
          if Result_set.compare_rows row base_rows.(!taken) <> 0 then
            differs := true);
      incr taken
    done;
    !differs
  end

let fallback_differs core delta =
  let perturbed = Delta.apply core.db delta in
  not (Result_set.equal (Eval.run_plan core.plan perturbed) (core_base core))

(* The columnar engine short-circuits cell changes on columns the query
   never reads: the answer is a function of the referenced cells and
   the row multiset, and a Cell_change alters neither. The row engine
   stays free of this shortcut so check mode exercises it. *)
let unreferenced_cell core levels delta =
  match delta with
  | Delta.Row_drop _ -> false
  | Delta.Cell_change { col; _ } ->
      List.for_all (fun lvl -> not core.referenced.(lvl).(col)) levels

(* Positions are keyed by lowercased table name; generated deltas name
   tables in canonical (lower) case already, so try the raw name before
   paying for a fresh lowercased string per delta. *)
let find_positions core table =
  match Hashtbl.find_opt core.positions table with
  | Some levels -> Some levels
  | None -> Hashtbl.find_opt core.positions (String.lowercase_ascii table)

(* Delta.changed_tuple with the relation lookup memoized per core. *)
let changed_tuple core delta =
  let name = Delta.relation delta in
  let r =
    match Hashtbl.find_opt core.rels name with
    | Some r -> r
    | None ->
        let r = Database.relation core.db name in
        Hashtbl.add core.rels name r;
        r
  in
  match delta with
  | Delta.Cell_change { row; col; value; _ } ->
      let old_tup = Relation.tuple r row in
      let new_tup = Array.copy old_tup in
      new_tup.(col) <- value;
      (old_tup, Some new_tup)
  | Delta.Row_drop { row; _ } -> (Relation.tuple r row, None)

let core_differs core delta =
  match find_positions core (Delta.relation delta) with
  | None -> false
  | Some levels -> (
      if
        (match core.backend with B_col _ -> true | B_row _ -> false)
        && unreferenced_cell core levels delta
      then false
      else
        match core.strategy with
        | Fallback -> fallback_differs core delta
        | strategy -> (
            match levels with
            | [ level ] -> (
                let old_tup, new_tup = changed_tuple core delta in
                (* Columnar fast path: when neither the old nor the new
                   tuple can appear in a satisfying env, both
                   contribution sets are empty and every incremental
                   strategy answers "no change" on empty deltas. *)
                let provably_empty =
                  match core.backend with
                  | B_row _ -> false
                  | B_col col ->
                      (not (Col_eval.tuple_participates col level old_tup))
                      && (match new_tup with
                         | None -> true
                         | Some nt -> not (Col_eval.may_extend col level nt))
                in
                if provably_empty then false
                else
                  let removed = contributions core level (Some old_tup) in
                  let added = contributions core level new_tup in
                  match strategy with
                  | Rowwise -> rowwise_differs core removed added
                  | Rowwise_distinct counts ->
                      distinct_differs core counts removed added
                  | Grouped gs -> grouped_differs core gs removed added
                  | Limited { k; base_rows } ->
                      limited_differs core k base_rows removed added
                  | Fallback -> assert false)
            | _ ->
                (* Self-joins force the fallback strategy at prepare
                   time, so this is unreachable; stay safe regardless. *)
                fallback_differs core delta))

let differs t delta =
  match t.check_row with
  | None -> core_differs t.main delta
  | Some row_core ->
      let col_ans = core_differs t.main delta in
      let row_ans = core_differs row_core delta in
      if col_ans <> row_ans then Atomic.incr mismatch_count;
      (* the row engine is the oracle *)
      row_ans

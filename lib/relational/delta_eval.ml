type group = { acc : Agg_state.acc; mutable base_out : Value.t array option }

type grouped_state = {
  groups : (Value.t array, group) Hashtbl.t;
  global : bool;
}

type strategy =
  | Rowwise
  | Rowwise_distinct of (Value.t array, int) Hashtbl.t
  | Grouped of grouped_state
  | Fallback

type t = {
  db : Database.t;
  q : Query.t;
  plan : Eval.plan;
  prejoined : Eval.prejoined;
  positions : (string, int list) Hashtbl.t;  (** table name -> FROM levels *)
  strategy : strategy;
  mutable base : Result_set.t option;
}

let query t = t.q

let base_result t =
  match t.base with
  | Some r -> r
  | None ->
      let r = Eval.run_plan t.plan t.db in
      t.base <- Some r;
      r

let strategy_name t =
  match t.strategy with
  | Rowwise -> "rowwise"
  | Rowwise_distinct _ -> "rowwise-distinct"
  | Grouped _ -> "grouped"
  | Fallback -> "fallback"

(* Grouped answers stay per-key comparable only when every selected
   field is itself a group key; then output rows are pairwise distinct
   and a changed group cannot be masked by another group's identical
   row. *)
let fields_are_group_keys q =
  List.for_all
    (function
      | Query.Field (e, _) -> List.exists (fun g -> g = e) q.Query.group_by
      | Query.Aggregate _ -> true)
    q.Query.select

let table_positions q =
  let positions = Hashtbl.create 4 in
  List.iteri
    (fun i { Query.table; _ } ->
      let key = String.lowercase_ascii table in
      let cur = Option.value (Hashtbl.find_opt positions key) ~default:[] in
      Hashtbl.replace positions key (cur @ [ i ]))
    q.Query.from;
  positions

let choose_strategy plan q envs positions =
  let self_join = Hashtbl.fold (fun _ ps b -> b || List.length ps > 1) positions false in
  if self_join || q.Query.limit <> None then Fallback
  else if Query.has_aggregate q || q.Query.group_by <> [] then
    if q.Query.distinct then Fallback
    else if q.Query.group_by = [] && List.exists (function Query.Field _ -> true | Query.Aggregate _ -> false) q.Query.select
    then Fallback
    else if not (fields_are_group_keys q) then Fallback
    else begin
      let groups = Hashtbl.create 64 in
      List.iter
        (fun env ->
          let key = Eval.group_key plan env in
          let g =
            match Hashtbl.find_opt groups key with
            | Some g -> g
            | None ->
                let g = { acc = Agg_state.create (Eval.agg_kinds plan); base_out = None } in
                Hashtbl.add groups key g;
                g
          in
          Agg_state.add g.acc (Eval.agg_row plan env))
        envs;
      Grouped { groups; global = q.Query.group_by = [] }
    end
  else if q.Query.distinct then begin
    let counts = Hashtbl.create 256 in
    List.iter
      (fun env ->
        let row = Eval.project plan env in
        let cur = Option.value (Hashtbl.find_opt counts row) ~default:0 in
        Hashtbl.replace counts row (cur + 1))
      envs;
    Rowwise_distinct counts
  end
  else Rowwise

let prepare db q =
  let plan = Eval.prepare db q in
  let prejoined = Eval.precompute_levels plan db in
  let positions = table_positions q in
  let needs_envs =
    (Query.has_aggregate q || q.Query.group_by <> [] || q.Query.distinct)
    && q.Query.limit = None
  in
  let envs = if needs_envs then Eval.join_prejoined plan prejoined else [] in
  let strategy = choose_strategy plan q envs positions in
  { db; q; plan; prejoined; positions; strategy; base = None }

(* --- per-delta contribution ----------------------------------------- *)

let contributions t level tup_opt =
  match tup_opt with
  | None -> []
  | Some tup -> Eval.join_fixed t.plan t.prejoined (level, tup)

let multiset_equal rows_a rows_b =
  List.length rows_a = List.length rows_b
  &&
  let sort l = List.sort Result_set.compare_rows l in
  List.for_all2
    (fun a b -> Result_set.compare_rows a b = 0)
    (sort rows_a) (sort rows_b)

let rowwise_differs t removed added =
  let proj envs = List.map (Eval.project t.plan) envs in
  not (multiset_equal (proj removed) (proj added))

let distinct_differs t counts removed added =
  let net = Hashtbl.create 8 in
  let bump env d =
    let row = Eval.project t.plan env in
    let cur = Option.value (Hashtbl.find_opt net row) ~default:0 in
    Hashtbl.replace net row (cur + d)
  in
  List.iter (fun env -> bump env (-1)) removed;
  List.iter (fun env -> bump env 1) added;
  Hashtbl.fold
    (fun row d acc ->
      acc
      ||
      let base = Option.value (Hashtbl.find_opt counts row) ~default:0 in
      base > 0 <> (base + d > 0))
    net false

let group_base_out g =
  match g.base_out with
  | Some out -> out
  | None ->
      let out = Agg_state.output g.acc in
      g.base_out <- Some out;
      out

let grouped_differs t gs removed added =
  let by_key = Hashtbl.create 8 in
  let file d env =
    let key = Eval.group_key t.plan env in
    let rem, add =
      Option.value (Hashtbl.find_opt by_key key) ~default:([], [])
    in
    let row = Eval.agg_row t.plan env in
    if d < 0 then Hashtbl.replace by_key key (row :: rem, add)
    else Hashtbl.replace by_key key (rem, row :: add)
  in
  List.iter (file (-1)) removed;
  List.iter (file 1) added;
  let arr_equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b in
  Hashtbl.fold
    (fun key (rem, add) acc ->
      acc
      ||
      match Hashtbl.find_opt gs.groups key with
      | Some g -> (
          match Agg_state.output_with_delta g.acc ~removed:rem ~added:add with
          | None ->
              if gs.global then
                (* A global aggregate never loses its single output row;
                   it degrades to the empty-input row. *)
                not (arr_equal (group_base_out g)
                       (Agg_state.empty_output (Eval.agg_kinds t.plan)))
              else true
          | Some out -> not (arr_equal (group_base_out g) out))
      | None ->
          (* A brand-new group key: only additions can reach it. *)
          add <> []
          &&
          if gs.global then
            let acc0 = Agg_state.create (Eval.agg_kinds t.plan) in
            List.iter (Agg_state.add acc0) add;
            not (arr_equal (Agg_state.output acc0)
                   (Agg_state.empty_output (Eval.agg_kinds t.plan)))
          else true)
    by_key false

let fallback_differs t delta =
  let perturbed = Delta.apply t.db delta in
  not (Result_set.equal (Eval.run_plan t.plan perturbed) (base_result t))

let differs t delta =
  let table = String.lowercase_ascii (Delta.relation delta) in
  match Hashtbl.find_opt t.positions table with
  | None -> false
  | Some levels -> (
      match t.strategy with
      | Fallback -> fallback_differs t delta
      | strategy -> (
          match levels with
          | [ level ] -> (
              let old_tup, new_tup = Delta.changed_tuple t.db delta in
              let removed = contributions t level (Some old_tup) in
              let added = contributions t level new_tup in
              match strategy with
              | Rowwise -> rowwise_differs t removed added
              | Rowwise_distinct counts -> distinct_differs t counts removed added
              | Grouped gs -> grouped_differs t gs removed added
              | Fallback -> assert false)
          | _ ->
              (* Self-joins force the fallback strategy at prepare
                 time, so this is unreachable; stay safe regardless. *)
              fallback_differs t delta))

(* Backtracking matcher with the classic two-pointer optimization: on a
   mismatch, restart just after the most recent '%'. Linear in practice
   for the workload patterns (a single leading or trailing '%'). *)
let matches ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si star_pi star_si =
    if si = ns then
      let rec only_percents i = i = np || (pattern.[i] = '%' && only_percents (i + 1)) in
      if only_percents pi then true
      else if star_pi >= 0 && star_si < ns then
        go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
      else false
    else if pi < np && pattern.[pi] = '%' then go (pi + 1) si pi si
    else if pi < np && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if star_pi >= 0 then go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)

(** Packed bit vectors (selection masks for the columnar engine).

    A mask over the rows of one relation: the predicate kernels in
    {!Col_eval} produce one mask per conjunct and combine them with
    whole-word boolean operations. Bits past the logical length are
    kept zero, so word-wise combination is closed over well-formed
    masks. *)

type t

val create : int -> t
(** [create len] — all bits clear. *)

val full : int -> t
(** [full len] — all [len] bits set. *)

val init : int -> (int -> bool) -> t
(** [init len f] — bit [i] holds [f i]; [f] is applied in index order,
    accumulated word-at-a-time (the vectorized-kernel building block). *)

val length : t -> int
(** Logical number of bits. *)

val get : t -> int -> bool
(** [get t i] — bit [i]. *)

val set : t -> int -> unit
(** Set bit [i]. *)

val clear : t -> int -> unit
(** Clear bit [i]. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] — [dst <- dst AND src]. Lengths must match. *)

val union_into : t -> t -> unit
(** [union_into dst src] — [dst <- dst OR src]. Lengths must match. *)

val complement_into : t -> unit
(** Flip every bit in place (within the logical length — tail bits stay
    zero). Implements SQL [NOT] over a predicate mask: rows where the
    inner predicate was false {e or null} become set, matching the
    row engine's two-valued semantics. *)

val count : t -> int
(** Number of set bits. *)

val iter : (int -> unit) -> t -> unit
(** Apply to each set bit in increasing order, skipping zero words. *)

val to_array : t -> int array
(** Set bits in increasing order (the selection vector). *)

(** A database instance: a set of named relations. *)

type t

val make : Relation.t list -> t
(** Relation names (from their schemas) must be distinct. *)

val relation : t -> string -> Relation.t
(** Lookup by name (case-insensitive). Raises [Not_found]. *)

val relation_opt : t -> string -> Relation.t option
val relations : t -> Relation.t list
val names : t -> string list
val total_rows : t -> int

val with_relation : t -> Relation.t -> t
(** [with_relation db r] replaces the relation with [r]'s name. *)

(** A database instance: a set of named relations. *)

type t

val make : Relation.t list -> t
(** Relation names (from their schemas) must be distinct. *)

val relation : t -> string -> Relation.t
(** Lookup by name (case-insensitive). Raises [Not_found]. *)

val relation_opt : t -> string -> Relation.t option
(** Like {!relation}, [None] instead of raising. *)

val relations : t -> Relation.t list
(** All relations, in construction order. *)

val names : t -> string list
(** Relation names as declared in their schemas. *)

val total_rows : t -> int
(** Sum of all relations' cardinalities — the number of perturbable
    tuples (support sampling picks relations proportionally to it). *)

val with_relation : t -> Relation.t -> t
(** [with_relation db r] replaces the relation with [r]'s name. *)

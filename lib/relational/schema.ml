type attr_type = T_int | T_string

type t = {
  name : string;
  attrs : (string * attr_type) array;
  index : (string, int) Hashtbl.t;
}

let normalize = String.lowercase_ascii

let make ~name ~attrs =
  let attrs = Array.of_list attrs in
  let index = Hashtbl.create (Array.length attrs) in
  Array.iteri
    (fun i (a, _) ->
      let key = normalize a in
      if Hashtbl.mem index key then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %s" a);
      Hashtbl.replace index key i)
    attrs;
  { name; attrs; index }

let name t = t.name
let arity t = Array.length t.attrs
let attrs t = Array.to_list t.attrs

let index_of t a =
  match Hashtbl.find_opt t.index (normalize a) with
  | Some i -> i
  | None -> raise Not_found

let attr_name t i = fst t.attrs.(i)
let attr_type t i = snd t.attrs.(i)

let equal a b =
  String.equal a.name b.name
  && Array.length a.attrs = Array.length b.attrs
  && Array.for_all2 (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && t1 = t2)
       a.attrs b.attrs

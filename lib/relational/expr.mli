(** Scalar and predicate expressions for [WHERE] clauses, [GROUP BY]
    keys and aggregate arguments.

    Expressions are built as an untyped AST (convenient for the workload
    generators, printable as SQL) and compiled against a [FROM]
    environment before evaluation; see {!Eval}. *)

type col_ref = { table : string option; column : string }
(** [table] is a [FROM] alias or relation name; [None] means the column
    is resolved by unique name across the environment. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul

type t =
  | Col of col_ref
  | Const of Value.t
  | Arith of arith * t * t
      (** integer arithmetic; [Null] operands (or non-integers)
          propagate [Null] *)
  | Cmp of cmp * t * t
  | Between of t * t * t  (** [Between (e, lo, hi)], bounds inclusive *)
  | In_list of t * Value.t list
  | Like of t * string
  | And of t * t
  | Or of t * t
  | Not of t

(** {2 AST constructors} — the workload generators' building blocks. *)

val col : ?table:string -> string -> t
(** Column reference, optionally qualified by alias or table name. *)

val int : int -> t
(** Integer literal. *)

val str : string -> t
(** String literal. *)

val eq : t -> t -> t
(** Equality comparison. *)

val ( + ) : t -> t -> t
(** Integer addition. *)

val ( - ) : t -> t -> t
(** Integer subtraction. *)

val ( * ) : t -> t -> t
(** Integer multiplication. *)

val ( && ) : t -> t -> t
(** Boolean conjunction. *)

val ( || ) : t -> t -> t
(** Boolean disjunction. *)

val conj : t list -> t option
(** Conjunction of a possibly-empty list ([None] when empty). *)

val columns : t -> col_ref list
(** All column references, in syntactic order, duplicates included. *)

val to_sql : t -> string

(** Compiled form. *)

type env = Relation.tuple array
(** One bound tuple per [FROM] item, positionally. *)

type compiled = private {
  eval : env -> Value.t;
  tables : int list;  (** sorted indices of the [FROM] items read *)
}

val compile : (string * Schema.t) array -> t -> compiled
(** [compile from expr] resolves every column against [from] (pairs of
    alias and schema, positionally matching the runtime [env]).
    Unqualified columns must resolve uniquely; failures raise
    [Invalid_argument] with a descriptive message.

    Comparison, [BETWEEN], [IN] and [LIKE] involving [NULL] evaluate to
    false (two-valued logic — the generated datasets keep predicate
    columns non-null, so this never diverges from SQL). Predicates
    return [Int 1] / [Int 0]; {!is_true} interprets them. *)

val is_true : Value.t -> bool
(** [Int 0] and [Null] are false; everything else is true. *)

val resolve : (string * Schema.t) array -> col_ref -> int * int
(** [(level, column)] position of a column reference in the [FROM]
    environment — the same resolution {!compile} performs, exposed so
    the columnar kernels can map conjunct ASTs onto columns. Raises
    [Invalid_argument] on unresolved or ambiguous references. *)

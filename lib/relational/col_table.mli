(** Columnar storage: one typed array per attribute.

    The columnar engine's data layout — integer columns as flat [int]
    arrays, string columns dictionary-encoded against a sorted
    dictionary (code order = string order), NULLs as cleared bits in a
    validity mask. The source relation's row tuples remain reachable,
    so join results materialize as pointers to the original tuples and
    all downstream Value-level machinery is shared with the row
    engine. *)

type col =
  | C_int of { data : int array; valid : Bitset.t option }
      (** Integer column; [valid = None] means no NULLs. A cleared
          validity bit makes the stored 0 meaningless. *)
  | C_str of { codes : int array; dict : string array; valid : Bitset.t option }
      (** Dictionary-encoded string column. [dict] is sorted by
          [String.compare] and duplicate-free, so code comparisons
          order exactly like string comparisons. *)

type t
(** One relation in columnar form. *)

val of_relation : Relation.t -> t
(** Build the columnar image (dictionary sort included). *)

val of_relation_cached : Relation.t -> t
(** {!of_relation} memoized per domain on physical equality of the
    relation — repeated prepares against the same instance reuse one
    image. Bounded (small LRU-ish cap), safe under the moving GC
    because keys are compared with [==], never hashed by address. *)

val relation : t -> Relation.t
(** The source relation. *)

val nrows : t -> int
(** Number of rows. *)

val col : t -> int -> col
(** Column by schema position. *)

val tuple : t -> int -> Relation.tuple
(** [tuple t i] — the source relation's row [i], by pointer. *)

val value : t -> int -> int -> Value.t
(** [value t row col] — one cell decoded back to a {!Value.t}
    ([Null] when the validity bit is clear). *)

val rev_index : t -> int -> (Value.t, int list) Hashtbl.t
(** [rev_index t col] — full-table reverse index: every row id per
    value, [Null]s under {!Value.Null}, buckets in descending row
    order. Built lazily, cached on the table (domain-local, so the
    mutation races with nothing). Valid as a selection-restricted
    index only when the selection covers every row. *)

val lower_bound : string array -> string -> int
(** [lower_bound dict s] — first index holding a string [>= s] (the
    array length when all are smaller). Requires a sorted array. *)

val rank : string array -> string -> int * bool
(** [(lower_bound, exact)] — the dictionary rank of [s] and whether it
    is present. The string-kernel building block. *)

(** Query abstract syntax: a single [SELECT] block with optional
    [DISTINCT], multi-table [FROM] (joins are expressed as conjunctive
    [WHERE] predicates, as in the paper's workloads), [GROUP BY],
    aggregates and [LIMIT].

    Semantics (implemented by {!Eval}): the answer is a {e multiset} of
    rows, canonically sorted; [LIMIT k] keeps the first [k] rows of the
    sorted answer, which makes it deterministic (MySQL's unordered
    [LIMIT] is not a function of the instance, and pricing requires
    queries to be deterministic functions). *)

type agg_fn =
  | Count_star
  | Count of Expr.t
  | Count_distinct of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type select_item =
  | Field of Expr.t * string  (** expression and output column name *)
  | Aggregate of agg_fn * string

type from_item = { table : string; alias : string option }

type t = {
  name : string;  (** identifier used in reports, e.g. ["Q17[USA]"] *)
  select : select_item list;
  distinct : bool;
  from : from_item list;
  where : Expr.t option;
  group_by : Expr.t list;
  limit : int option;
}

val make :
  name:string ->
  ?distinct:bool ->
  ?where:Expr.t ->
  ?group_by:Expr.t list ->
  ?limit:int ->
  from:string list ->
  select_item list ->
  t
(** [from] entries of the form ["Country C"] declare an alias. At least
    one [FROM] table and one select item are required. *)

val star : Database.t -> t -> select_item list
(** Expands [SELECT *] for [t]'s [FROM] list against the database's
    schemas: one [Field] per attribute, qualified when the query joins
    several tables. *)

val aggregates : t -> agg_fn list
(** The aggregate functions of the [SELECT] list, in order. *)

val has_aggregate : t -> bool
(** Whether any select item is an {!constructor:Aggregate}. *)

val tables : t -> string list
(** Distinct relation names referenced in [FROM]. *)

val to_sql : t -> string
(** Render back to the SQL dialect {!Sql.parse} accepts. *)

(* Columnar join enumeration.

   Reuses the row engine's plan (column resolution, predicate
   classification, equi detection) and replaces the data access layer:

   - per-level candidate sets come from vectorized predicate kernels
     over typed columns (Bitset masks combined word-wise), falling back
     to the conjunct's compiled closure for shapes without a kernel;
   - equi-join indexes hash raw ints (or dictionary strings) instead of
     boxed Value lists, with an explicit null bucket replicating the
     row engine's structural Null = Null probe matching;
   - join environments materialize as pointers to the source relation's
     row tuples (late materialization), so projection, grouping and
     aggregation share the row engine's code and values verbatim.

   Both engines therefore enumerate the same multiset of environments
   and construct answers with the same code — bit-identical results by
   construction, enforced empirically by QP_REL_ENGINE=check. *)

module B = Bitset

type index =
  | Scan
  | Ix_int of { tbl : (int, int list) Hashtbl.t; nulls : int list }
  | Ix_str of { tbl : (string, int list) Hashtbl.t; nulls : int list }
  | Ix_gen of { tbl : (Value.t list, int list) Hashtbl.t }

type level = {
  table : Col_table.t;
  sel : int array;  (* candidate row ids after single-conjunct filters *)
  equis : (int * Expr.compiled * int option) list;
  index : index;
  singles : Expr.compiled array;  (* pinned-tuple re-check in join_fixed *)
}

type t = {
  plan : Eval.plan;
  levels : level array;
  cross : Expr.compiled array array;
  rev0 : (int, (Value.t, int list) Hashtbl.t) Hashtbl.t;
      (* lazily-built per-column bucket index over level 0's candidates,
         the columnar analogue of the row engine's rev0 *)
  star : bool;
      (* every equi probe reads level 0 only (a bare column, an
         expression over level-0 columns, or a constant) and no cross
         filters exist anywhere: levels are independent given level 0,
         so per-level bucket emptiness decides joinability exactly *)
  mutable participating : (Relation.tuple, unit) Hashtbl.t array option;
      (* per level, the tuples (compared by value, as the row engine's
         hash probes do) occurring in at least one satisfying env *)
  mutable masks : B.t array option;
      (* star plans only: per level g >= 1, the level-0 candidates that
         find at least one partner at level g — the bit per candidate
         row makes "joins every level but f" a couple of bit tests *)
  scratch : Relation.tuple array;
      (* reusable one-binding env for the emptiness pre-checks; safe
         because star probes and per-level singles never read the other
         (stale) slots *)
}

(* --- vectorized predicate kernels ---------------------------------- *)

(* Every kernel produces the mask of rows where the predicate is true;
   NULL evaluates to false (bit clear), so AND/OR are plain word
   operations and NOT is complement — exactly the row engine's
   two-valued logic. *)

let apply_valid m = function None -> m | Some v -> B.inter_into m v; m

let all_valid n valid =
  match valid with
  | None -> B.full n
  | Some v ->
      let m = B.full n in
      B.inter_into m v;
      m

let int_range n data valid lo hi =
  if lo > hi then B.create n
  else apply_valid (B.init n (fun i -> lo <= data.(i) && data.(i) <= hi)) valid

let int_ne n data valid c =
  apply_valid (B.init n (fun i -> data.(i) <> c)) valid

(* Range of dictionary codes equivalent to [op v] on the strings. *)
let str_cmp_bounds dict op s =
  let r, exact = Col_table.rank dict s in
  match op with
  | Expr.Eq -> if exact then Some (r, r) else None
  | Expr.Ne -> assert false (* handled by caller *)
  | Expr.Lt -> Some (0, r - 1)
  | Expr.Le -> Some (0, r + (if exact then 0 else -1))
  | Expr.Gt -> Some (r + (if exact then 1 else 0), max_int)
  | Expr.Ge -> Some (r, max_int)

let cmp_kernel table ci op v =
  let n = Col_table.nrows table in
  match (Col_table.col table ci, v) with
  | _, Value.Null -> Some (B.create n) (* NULL comparand: all false *)
  | Col_table.C_int { data; valid }, Value.Int c -> (
      match op with
      | Expr.Eq -> Some (int_range n data valid c c)
      | Expr.Ne -> Some (int_ne n data valid c)
      | Expr.Lt ->
          Some (if c = min_int then B.create n else int_range n data valid min_int (c - 1))
      | Expr.Le -> Some (int_range n data valid min_int c)
      | Expr.Gt ->
          Some (if c = max_int then B.create n else int_range n data valid (c + 1) max_int)
      | Expr.Ge -> Some (int_range n data valid c max_int))
  | Col_table.C_int { valid; _ }, Value.Str _ -> (
      (* Value.compare (Int _) (Str _) < 0, constant per row. *)
      match op with
      | Expr.Lt | Expr.Le | Expr.Ne -> Some (all_valid n valid)
      | Expr.Eq | Expr.Gt | Expr.Ge -> Some (B.create n))
  | Col_table.C_int _, Value.Ratio _ -> None (* scalar fallback *)
  | Col_table.C_str { codes; dict; valid }, Value.Str s -> (
      match op with
      | Expr.Ne ->
          let r, exact = Col_table.rank dict s in
          Some (if exact then int_ne n codes valid r else all_valid n valid)
      | op -> (
          match str_cmp_bounds dict op s with
          | None -> Some (B.create n)
          | Some (lo, hi) -> Some (int_range n codes valid lo hi)))
  | Col_table.C_str { valid; _ }, (Value.Int _ | Value.Ratio _) -> (
      (* Value.compare (Str _) (numeric) > 0, constant per row. *)
      match op with
      | Expr.Gt | Expr.Ge | Expr.Ne -> Some (all_valid n valid)
      | Expr.Eq | Expr.Lt | Expr.Le -> Some (B.create n))

let between_kernel table ci lo hi =
  let n = Col_table.nrows table in
  match (lo, hi) with
  | Value.Null, _ | _, Value.Null -> Some (B.create n)
  | _ -> (
      match Col_table.col table ci with
      | Col_table.C_int { data; valid } ->
          let lo_bound =
            match lo with
            | Value.Int a -> Some a
            | Value.Str _ -> Some max_int (* Str <= Int never: empty below *)
            | _ -> None
          and hi_bound =
            match hi with
            | Value.Int b -> Some b
            | Value.Str _ -> Some max_int (* Int <= Str always *)
            | _ -> None
          in
          (match (lo, lo_bound, hi_bound) with
          | Value.Str _, _, _ -> Some (B.create n)
          | _, Some a, Some b -> Some (int_range n data valid a b)
          | _ -> None)
      | Col_table.C_str { codes; dict; valid } ->
          let lo_code =
            match lo with
            | Value.Str a -> Some (fst (Col_table.rank dict a))
            | Value.Int _ | Value.Ratio _ -> Some 0 (* numeric <= Str always *)
            | Value.Null -> None
          and hi_code =
            match hi with
            | Value.Str b ->
                let r, exact = Col_table.rank dict b in
                Some (r + if exact then 0 else -1)
            | Value.Int _ | Value.Ratio _ -> Some (-1) (* Str <= numeric never *)
            | Value.Null -> None
          in
          (match (lo_code, hi_code) with
          | Some a, Some b -> Some (int_range n codes valid a b)
          | _ -> None))

let in_list_kernel table ci vs =
  let n = Col_table.nrows table in
  match Col_table.col table ci with
  | Col_table.C_int { data; valid } ->
      let ints =
        List.filter_map (function Value.Int i -> Some i | _ -> None) vs
      in
      Some
        (apply_valid
           (B.init n (fun i -> List.exists (fun c -> data.(i) = c) ints))
           valid)
  | Col_table.C_str { codes; dict; valid } ->
      let mem =
        Array.map (fun s -> List.exists (Value.equal (Value.Str s)) vs) dict
      in
      Some
        (apply_valid
           (B.init n (fun i -> Array.length mem > 0 && mem.(codes.(i))))
           valid)

let like_kernel table ci pattern =
  let n = Col_table.nrows table in
  match Col_table.col table ci with
  | Col_table.C_int _ -> Some (B.create n) (* LIKE on non-strings: false *)
  | Col_table.C_str { codes; dict; valid } ->
      let mem = Array.map (fun s -> Like.matches ~pattern s) dict in
      Some
        (apply_valid
           (B.init n (fun i -> Array.length mem > 0 && mem.(codes.(i))))
           valid)

let truthy_kernel table ci =
  let n = Col_table.nrows table in
  match Col_table.col table ci with
  | Col_table.C_int { data; valid } ->
      apply_valid (B.init n (fun i -> data.(i) <> 0)) valid
  | Col_table.C_str { valid; _ } -> all_valid n valid (* any string is true *)

(* Compile one single-level conjunct AST to a mask, or None when no
   kernel shape applies (the caller then uses the compiled closure). *)
let rec kernel env_schemas lvl table e =
  let n = Col_table.nrows table in
  let col_of = function
    | Expr.Col cr -> (
        match Expr.resolve env_schemas cr with
        | l, c when l = lvl -> Some c
        | _ -> None
        | exception Invalid_argument _ -> None)
    | _ -> None
  in
  let const_of = function Expr.Const v -> Some v | _ -> None in
  match e with
  | Expr.Const v -> Some (if Expr.is_true v then B.full n else B.create n)
  | Expr.Col _ as c -> Option.map (truthy_kernel table) (col_of c)
  | Expr.Cmp (op, a, b) -> (
      match (col_of a, const_of b) with
      | Some ci, Some v -> cmp_kernel table ci op v
      | _ -> (
          match (const_of a, col_of b) with
          | Some v, Some ci ->
              (* flip the comparison around the column *)
              let flipped =
                match op with
                | Expr.Eq -> Expr.Eq
                | Expr.Ne -> Expr.Ne
                | Expr.Lt -> Expr.Gt
                | Expr.Le -> Expr.Ge
                | Expr.Gt -> Expr.Lt
                | Expr.Ge -> Expr.Le
              in
              cmp_kernel table ci flipped v
          | _ -> None))
  | Expr.Between (e, lo, hi) -> (
      match (col_of e, const_of lo, const_of hi) with
      | Some ci, Some l, Some h -> between_kernel table ci l h
      | _ -> None)
  | Expr.In_list (e, vs) -> (
      match col_of e with Some ci -> in_list_kernel table ci vs | None -> None)
  | Expr.Like (e, pattern) -> (
      match col_of e with
      | Some ci -> like_kernel table ci pattern
      | None -> None)
  | Expr.And (a, b) -> (
      match (kernel env_schemas lvl table a, kernel env_schemas lvl table b) with
      | Some ma, Some mb ->
          B.inter_into ma mb;
          Some ma
      | _ -> None)
  | Expr.Or (a, b) -> (
      match (kernel env_schemas lvl table a, kernel env_schemas lvl table b) with
      | Some ma, Some mb ->
          B.union_into ma mb;
          Some ma
      | _ -> None)
  | Expr.Not a -> (
      match kernel env_schemas lvl table a with
      | Some m ->
          B.complement_into m;
          Some m
      | None -> None)
  | Expr.Arith _ -> None

(* --- level construction -------------------------------------------- *)

let bucket_push tbl k row =
  Hashtbl.replace tbl k (row :: Option.value (Hashtbl.find_opt tbl k) ~default:[])

let build_index table sel equis =
  match equis with
  | [] -> Scan
  | [ (key_col, _, _) ] -> (
      match Col_table.col table key_col with
      | Col_table.C_int { data; valid } ->
          let tbl = Hashtbl.create (max 16 (Array.length sel)) in
          let nulls = ref [] in
          Array.iter
            (fun row ->
              match valid with
              | Some v when not (B.get v row) -> nulls := row :: !nulls
              | _ -> bucket_push tbl data.(row) row)
            sel;
          Ix_int { tbl; nulls = !nulls }
      | Col_table.C_str { codes; dict; valid } ->
          let tbl = Hashtbl.create (max 16 (Array.length sel)) in
          let nulls = ref [] in
          Array.iter
            (fun row ->
              match valid with
              | Some v when not (B.get v row) -> nulls := row :: !nulls
              | _ -> bucket_push tbl dict.(codes.(row)) row)
            sel;
          Ix_str { tbl; nulls = !nulls })
  | equis ->
      let tbl = Hashtbl.create (max 16 (Array.length sel)) in
      Array.iter
        (fun row ->
          let tup = Col_table.tuple table row in
          let key = List.map (fun (key_col, _, _) -> tup.(key_col)) equis in
          bucket_push tbl key row)
        sel;
      Ix_gen { tbl }

let build_level plan db lvl =
  let env_schemas = Eval.from_env plan in
  let name = (Eval.table_names plan).(lvl) in
  let table = Col_table.of_relation_cached (Database.relation db name) in
  let n = Col_table.nrows table in
  let singles = Eval.single_filters plan lvl in
  let mask = B.full n in
  let scratch = Array.make (Array.length env_schemas) [||] in
  List.iter
    (fun { Eval.f_ast; f_comp } ->
      match kernel env_schemas lvl table f_ast with
      | Some m -> B.inter_into mask m
      | None ->
          B.iter
            (fun i ->
              scratch.(lvl) <- Col_table.tuple table i;
              if not (Expr.is_true (f_comp.Expr.eval scratch)) then
                B.clear mask i)
            mask)
    singles;
  let sel = B.to_array mask in
  let equis = Eval.level_equis plan lvl in
  {
    table;
    sel;
    equis;
    index = build_index table sel equis;
    singles = Array.of_list (List.map (fun f -> f.Eval.f_comp) singles);
  }

let prepare plan db =
  let levels =
    Array.init (Array.length (Eval.from_env plan)) (build_level plan db)
  in
  let cross = Eval.cross_compiled plan in
  (* Classifier (not Eval's probe_col0, which only spots bare level-0
     columns): a probe whose [tables] is [] (constant) or [0] keeps the
     level independent of every level but 0. Level 0 itself never
     carries equis (probes reference earlier levels). *)
  let star =
    Array.for_all (fun c -> Array.length c = 0) cross
    && Array.for_all
         (fun lv ->
           List.for_all
             (fun (_, probe, _) ->
               match probe.Expr.tables with [] | [ 0 ] -> true | _ -> false)
             lv.equis)
         levels
  in
  {
    plan;
    levels;
    cross;
    rev0 = Hashtbl.create 4;
    star;
    participating = None;
    masks = None;
    scratch = Array.make (Array.length levels) [||];
  }

let plan t = t.plan

(* --- join enumeration ---------------------------------------------- *)

let rev0_index t c0 =
  match Hashtbl.find_opt t.rev0 c0 with
  | Some idx -> idx
  | None ->
      let lv = t.levels.(0) in
      let idx =
        if Array.length lv.sel = Col_table.nrows lv.table then
          (* No level-0 filter: the cached full-table index is exactly
             the selection-restricted one, shared across queries. *)
          Col_table.rev_index lv.table c0
        else begin
          let idx = Hashtbl.create 256 in
          (match Col_table.col lv.table c0 with
          | Col_table.C_int { data; valid } ->
              Array.iter
                (fun row ->
                  let k =
                    match valid with
                    | Some v when not (B.get v row) -> Value.Null
                    | _ -> Value.Int data.(row)
                  in
                  bucket_push idx k row)
                lv.sel
          | Col_table.C_str { codes; dict; valid } ->
              Array.iter
                (fun row ->
                  let k =
                    match valid with
                    | Some v when not (B.get v row) -> Value.Null
                    | _ -> Value.Str dict.(codes.(row))
                  in
                  bucket_push idx k row)
                lv.sel);
          idx
        end
      in
      Hashtbl.replace t.rev0 c0 idx;
      idx

let probe_rows index (key : Value.t list) =
  match (index, key) with
  | Ix_int { tbl; nulls }, [ v ] -> (
      match v with
      | Value.Int i -> Option.value (Hashtbl.find_opt tbl i) ~default:[]
      | Value.Null -> nulls (* Null = Null matches, like the row probe *)
      | Value.Str _ | Value.Ratio _ -> [])
  | Ix_str { tbl; nulls }, [ v ] -> (
      match v with
      | Value.Str s -> Option.value (Hashtbl.find_opt tbl s) ~default:[]
      | Value.Null -> nulls
      | Value.Int _ | Value.Ratio _ -> [])
  | Ix_gen { tbl }, key -> Option.value (Hashtbl.find_opt tbl key) ~default:[]
  | Scan, _ -> assert false
  | (Ix_int _ | Ix_str _), _ -> assert false

let passes env filters =
  Array.for_all (fun c -> Expr.is_true (c.Expr.eval env)) filters

(* Does level [g] (>= 1) offer at least one tuple for the level-0 row
   bound in [env]? Star probes read only level 0, so this is a single
   bucket lookup; a Scan level is an unkeyed cross product over its
   candidates. Single-equi levels skip the key-list allocation. *)
let level_has_match t env g =
  let lv = t.levels.(g) in
  match (lv.index, lv.equis) with
  | Scan, _ -> Array.length lv.sel > 0
  | Ix_int { tbl; nulls }, [ (_, probe, _) ] -> (
      match probe.Expr.eval env with
      | Value.Int i -> Hashtbl.mem tbl i
      | Value.Null -> nulls <> []
      | Value.Str _ | Value.Ratio _ -> false)
  | Ix_str { tbl; nulls }, [ (_, probe, _) ] -> (
      match probe.Expr.eval env with
      | Value.Str s -> Hashtbl.mem tbl s
      | Value.Null -> nulls <> []
      | Value.Int _ | Value.Ratio _ -> false)
  | index, equis ->
      probe_rows index (List.map (fun (_, probe, _) -> probe.Expr.eval env) equis)
      <> []

(* One pass per level over level 0's candidates: bit [r] of mask [g]
   says candidate row [r] finds a partner at level [g]. Levels probed
   on a bare level-0 column run over the unboxed column directly. *)
let level_masks t =
  match t.masks with
  | Some m -> m
  | None ->
      let n = Array.length t.levels in
      let lv0 = t.levels.(0) in
      let n0 = Col_table.nrows lv0.table in
      let masks =
        Array.init n (fun g ->
            if g = 0 then B.create 0
            else
              let m = B.create n0 in
              let lv = t.levels.(g) in
              let generic () =
                let env = Array.make n [||] in
                Array.iter
                  (fun r ->
                    env.(0) <- Col_table.tuple lv0.table r;
                    if level_has_match t env g then B.set m r)
                  lv0.sel
              in
              (let bare, rest =
                 List.partition (fun (_, _, c0) -> c0 <> None) lv.equis
               in
               let rest_const =
                 List.for_all
                   (fun (_, probe, _) -> probe.Expr.tables = [])
                   rest
               in
               (* Constant probes ([tables] = []) never read the env. *)
               let consts () =
                 List.map
                   (fun (kc, probe, _) -> (kc, probe.Expr.eval t.scratch))
                   rest
               in
               let matches_consts consts tup =
                 List.for_all (fun (kc, v) -> tup.(kc) = v) consts
               in
               match (lv.index, bare) with
               | Scan, _ ->
                   if Array.length lv.sel > 0 then
                     Array.iter (fun r -> B.set m r) lv0.sel
               | _, [ (key_col, _, Some c0) ] when rest_const ->
                   (* One bare-column equi (plus constant equis): build
                      from the (small) dim side — each candidate partner
                      passing the constants selects a reverse bucket of
                      level-0 rows. Null keys land on the Null bucket,
                      matching the probe's Null = Null rule. *)
                   let rev = rev0_index t c0 in
                   let consts = consts () in
                   Array.iter
                     (fun drow ->
                       let tup = Col_table.tuple lv.table drow in
                       if matches_consts consts tup then
                         match Hashtbl.find_opt rev tup.(key_col) with
                         | Some rows -> List.iter (fun r -> B.set m r) rows
                         | None -> ())
                     lv.sel
               | _, [] when rest_const ->
                   (* Purely constant-keyed level: every candidate
                      level-0 row joins iff some partner passes. *)
                   let consts = consts () in
                   if
                     Array.exists
                       (fun drow ->
                         matches_consts consts (Col_table.tuple lv.table drow))
                       lv.sel
                   then Array.iter (fun r -> B.set m r) lv0.sel
               | _ -> generic ());
               m)
      in
      t.masks <- Some masks;
      masks

let enumerate t fixed =
  let n = Array.length t.levels in
  let env = Array.make n [||] in
  let out = ref [] in
  (* The pinned tuple must pass its level's single conjuncts, exactly
     as the row engine's one-tuple level rebuild applies them. *)
  let fixed_ok =
    match fixed with
    | None -> true
    | Some (flvl, tup) ->
        let scratch = Array.make n [||] in
        scratch.(flvl) <- tup;
        passes scratch t.levels.(flvl).singles
  in
  if not fixed_ok then []
  else begin
    (* When the pinned level joins level 0 directly on a column,
       restrict the level-0 scan to the matching bucket. *)
    let level0_bucket =
      match fixed with
      | Some (flvl, tup) when flvl > 0 -> (
          match
            List.find_opt (fun (_, _, c0) -> c0 <> None) t.levels.(flvl).equis
          with
          | Some (key_col, _, Some c0) ->
              Some
                (Option.value
                   (Hashtbl.find_opt (rev0_index t c0) tup.(key_col))
                   ~default:[])
          | _ -> None)
      | _ -> None
    in
    let rec extend lvl =
      if lvl = n then out := Array.copy env :: !out
      else
        let lv = t.levels.(lvl) in
        let cross = t.cross.(lvl) in
        let visit_tup tup =
          env.(lvl) <- tup;
          if passes env cross then extend (lvl + 1)
        in
        let visit_row row = visit_tup (Col_table.tuple lv.table row) in
        match fixed with
        | Some (flvl, tup) when flvl = lvl ->
            if
              List.for_all
                (fun (key_col, probe, _) ->
                  (* structural equality, as the row engine's Hashtbl
                     probe applies to Value lists *)
                  probe.Expr.eval env = tup.(key_col))
                lv.equis
            then visit_tup tup
        | _ -> (
            match lv.index with
            | Scan -> (
                (* Star plans: the level masks decide, per level-0
                   candidate, whether every later level has a partner —
                   rows failing any mask produce no env, so skip them
                   before touching a tuple. A pinned level is exempt
                   ([skip]): join_fixed admits tuples outside its
                   candidate set, which the masks never see. *)
                let star_iter skip iter coll =
                  if t.star && n > 1 then begin
                    let masks = level_masks t in
                    iter
                      (fun r ->
                        let ok = ref true in
                        let g = ref 1 in
                        while !ok && !g < n do
                          if !g <> skip then ok := B.get masks.(!g) r;
                          incr g
                        done;
                        if !ok then visit_row r)
                      coll
                  end
                  else iter visit_row coll
                in
                match (lvl, level0_bucket, fixed) with
                | 0, Some bucket, Some (flvl, _) ->
                    star_iter flvl List.iter bucket
                | 0, Some bucket, None -> List.iter visit_row bucket
                | 0, None, None -> star_iter (-1) Array.iter lv.sel
                | 0, None, Some (flvl, _) when flvl > 0 ->
                    star_iter flvl Array.iter lv.sel
                | _ -> Array.iter visit_row lv.sel)
            | index ->
                let key =
                  List.map (fun (_, probe, _) -> probe.Expr.eval env) lv.equis
                in
                List.iter visit_row (probe_rows index key))
    in
    extend 0;
    !out
  end

let join_prejoined t = enumerate t None
let join_fixed t fixed = enumerate t (Some fixed)
let run t = Eval.result_of_envs t.plan (join_prejoined t)

(* --- per-delta emptiness pre-checks --------------------------------- *)

(* The per-delta scan spends most of its time proving that a changed
   tuple contributes nothing: join_fixed re-applies singles and probes
   every level for both the old and the new tuple, per delta. The
   checks below decide the common "contribution empty" case from
   precomputed state in a handful of hash lookups and bit tests.

   A pinned tuple's contribution is a value-level question — join_fixed
   pins by value, bypassing the pinned level's own candidate set — so
   the same test serves the old (stored) and the new (hypothetical)
   tuple of a delta. *)

let seed_participating_from t envs =
  let p = Array.map (fun _ -> Hashtbl.create 1024) t.levels in
  List.iter
    (fun env ->
      Array.iteri (fun lvl tup -> Hashtbl.replace p.(lvl) tup ()) env)
    envs;
  t.participating <- Some p

(* Star plans never consult [participating] (the index probes decide
   pins exactly), so don't pay for the table. *)
let seed_participating t envs =
  if (not t.star) && t.participating = None then seed_participating_from t envs

let participating t =
  match t.participating with
  | Some p -> p
  | None ->
      seed_participating_from t (enumerate t None);
      Option.get t.participating

(* Exact joinability of a tuple pinned at a star plan's level [flvl]
   (>= 1): some level-0 candidate must match every equi of [flvl]
   against the pinned tuple and find a partner at each remaining level
   (the mask bits). Candidates come from the reverse bucket of a
   bare-column equi; a level with only expression probes has no such
   bucket and stays conservative. *)
let star_dim_pin t flvl tup =
  let lv = t.levels.(flvl) in
  let masks = level_masks t in
  let n = Array.length t.levels in
  let completes r =
    let ok = ref true in
    let g = ref 1 in
    while !ok && !g < n do
      if !g <> flvl then ok := B.get masks.(!g) r;
      incr g
    done;
    !ok
  in
  match lv.equis with
  | [] ->
      (* Unkeyed level: the pin joins iff any level-0 candidate
         completes at the remaining levels. *)
      Array.exists completes t.levels.(0).sel
  | equis -> (
      match List.find_opt (fun (_, _, c0) -> c0 <> None) equis with
      | Some ((key_col, _, Some c0) as chosen) ->
          let bucket =
            Option.value
              (Hashtbl.find_opt (rev0_index t c0) tup.(key_col))
              ~default:[]
          in
          let extra = List.filter (fun e -> e != chosen) equis in
          let env = t.scratch in
          List.exists
            (fun r ->
              completes r
              && (extra == []
                 || begin
                      env.(0) <- Col_table.tuple t.levels.(0).table r;
                      List.for_all
                        (fun (kc, probe, _) -> probe.Expr.eval env = tup.(kc))
                        extra
                    end))
            bucket
      | _ -> true)

(* Emptiness of [join_fixed (flvl, tup)] without running it: [false] is
   always exact; [true] means "maybe nonempty" and the caller falls
   back to the full join. Star plans are decided exactly (modulo
   expression-probed pinned levels): pinning level 0 leaves one bucket
   probe per remaining level, and pinning a later level reduces to its
   reverse bucket filtered by the masks. *)
let pin_may_join t flvl tup =
  let scratch = t.scratch in
  scratch.(flvl) <- tup;
  passes scratch t.levels.(flvl).singles
  &&
  if t.star then
    if flvl = 0 then begin
      let n = Array.length t.levels in
      let ok = ref true in
      let g = ref 1 in
      while !ok && !g < n do
        ok := level_has_match t scratch !g;
        incr g
      done;
      !ok
    end
    else star_dim_pin t flvl tup
  else if flvl > 0 then
    (* Non-star fallback: probes of this level that read a single
       level-0 column must hit a level-0 candidate; other levels are
       not consulted, so a [true] here stays conservative. *)
    List.for_all
      (fun (key_col, _, c0) ->
        match c0 with
        | None -> true
        | Some c0 ->
            Option.value
              (Hashtbl.find_opt (rev0_index t c0) tup.(key_col))
              ~default:[]
            <> [])
      t.levels.(flvl).equis
  else true

let tuple_participates t lvl tup =
  if t.star then pin_may_join t lvl tup
  else Hashtbl.mem (participating t).(lvl) tup

let may_extend = pin_may_join

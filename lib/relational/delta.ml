type t =
  | Cell_change of { relation : string; row : int; col : int; value : Value.t }
  | Row_drop of { relation : string; row : int }

let relation = function
  | Cell_change { relation; _ } | Row_drop { relation; _ } -> relation

let apply db = function
  | Cell_change { relation; row; col; value } ->
      let r = Database.relation db relation in
      let tup = Array.copy (Relation.tuple r row) in
      tup.(col) <- value;
      Database.with_relation db (Relation.replace_tuple r row tup)
  | Row_drop { relation; row } ->
      let r = Database.relation db relation in
      Database.with_relation db (Relation.drop_tuple r row)

let changed_tuple db = function
  | Cell_change { relation; row; col; value } ->
      let r = Database.relation db relation in
      let old_tup = Relation.tuple r row in
      let new_tup = Array.copy old_tup in
      new_tup.(col) <- value;
      (old_tup, Some new_tup)
  | Row_drop { relation; row } ->
      let r = Database.relation db relation in
      (Relation.tuple r row, None)

let is_noop db = function
  | Cell_change { relation; row; col; value } ->
      let r = Database.relation db relation in
      Value.equal (Relation.tuple r row).(col) value
  | Row_drop _ -> false

let pp fmt = function
  | Cell_change { relation; row; col; value } ->
      Format.fprintf fmt "%s[%d].%d <- %a" relation row col Value.pp value
  | Row_drop { relation; row } -> Format.fprintf fmt "%s[%d] dropped" relation row

(** Columnar join enumeration — the vectorized engine behind
    [QP_REL_ENGINE=columnar].

    Shares {!Eval}'s plan (resolution, predicate classification, equi
    detection) and its output construction ({!Eval.result_of_envs});
    replaces candidate filtering with vectorized kernels over
    {!Col_table} columns and equi probes with unboxed int / dictionary
    hash indexes. Environments materialize as pointers to the source
    relations' row tuples, so both engines enumerate the same multiset
    of environments and build answers through the same code. *)

type t
(** Per-instance prepared state: per-level selection vectors and join
    indexes (the columnar analogue of {!Eval.prejoined}). *)

val prepare : Eval.plan -> Database.t -> t
(** Build selection vectors and indexes for one instance (columnar
    images are cached per relation, see
    {!Col_table.of_relation_cached}). *)

val plan : t -> Eval.plan
(** The plan this state was prepared from. *)

val join_prejoined : t -> Expr.env list
(** Every [WHERE]-satisfying join environment (as {!Eval.join_prejoined}). *)

val join_fixed : t -> int * Relation.tuple -> Expr.env list
(** Environments with one [FROM] position pinned to a given tuple (as
    {!Eval.join_fixed}, including the reverse level-0 bucket
    restriction). *)

val run : t -> Result_set.t
(** The full query answer from this engine — used by the cross-engine
    identity tests. *)

(** {2 Per-delta emptiness pre-checks}

    {!Delta_eval}'s hot loop asks, per delta, for the contributions of
    the old and new tuple; for most deltas both are empty. These decide
    that common case from precomputed state in a few hash lookups,
    skipping {!join_fixed} entirely. *)

val seed_participating : t -> Expr.env list -> unit
(** Record the satisfying envs (as returned by {!join_prejoined}) so
    {!tuple_participates} need not re-enumerate. A no-op if already
    seeded, and for star plans, which never consult the table: their
    pins are decided directly from indexes and per-level masks. *)

val tuple_participates : t -> int -> Relation.tuple -> bool
(** Whether a tuple equal by value to [tup] can occur at [FROM]
    position [lvl] in a satisfying env. [false] is always exact — it
    proves the pinned old tuple contributes nothing. Star plans (no
    cross-level filters, every equi probing only level 0) answer from
    index probes and reverse-bucket/mask tests without enumerating;
    other plans hash the seeded (or lazily enumerated) env set. *)

val may_extend : t -> int -> Relation.tuple -> bool
(** Joinability of a {e new} tuple pinned at a level — a tuple the
    database never held, so env membership cannot answer it. [false]
    is exact (the tuple fails its level's single conjuncts, or a
    required partner bucket/mask is empty); [true] means "maybe", and
    the caller falls back to {!join_fixed}. Exact on star plans except
    for pinned levels probed only by non-column expressions. *)

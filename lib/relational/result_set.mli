(** Canonical query answers.

    Answers are multisets of rows; the representation sorts rows so that
    multiset equality is plain structural equality. Conflict-set
    computation ([Q(D) <> Q(D')]) reduces to {!equal}. *)

type t

val make : header:string array -> Value.t array array -> t
(** Takes ownership of [rows] and sorts them in place
    (lexicographically by {!Value.compare}). *)

val header : t -> string array
(** Output column names. *)

val rows : t -> Value.t array array
(** Sorted; callers must not mutate. *)

val row_count : t -> int
(** Number of answer rows. *)

val compare_rows : Value.t array -> Value.t array -> int
(** Lexicographic row order used for the canonical sort. *)

val equal : t -> t -> bool
(** Structural equality of header and sorted rows — the answer
    comparison conflict sets are built from. *)

val hash : t -> int
(** Structural hash consistent with {!equal}, covering every row (the
    polymorphic [Hashtbl.hash] truncates large structures and would
    collide trivially on big answers). *)

val pp : Format.formatter -> t -> unit
(** Aligned tabular rendering (header plus rows). *)

val truncated_to : int -> t -> t
(** [truncated_to k t] keeps the first [k] sorted rows — the
    deterministic [LIMIT] semantics. *)

(* Columnar mirror of a relation: one typed array per attribute.

   Strings are dictionary-encoded with the dictionary sorted by
   String.compare, so code order equals string order and every string
   comparison kernel reduces to an integer range test on the codes.
   NULLs are a cleared bit in the validity mask (the stored int/code is
   0 and must not be read when the bit is clear).

   The row tuples of the source relation stay reachable through [rel]:
   the engine materializes join environments as pointers to those
   tuples (late materialization), so projection/grouping/aggregation
   shares the row engine's code paths and values verbatim. *)

type col =
  | C_int of { data : int array; valid : Bitset.t option }
  | C_str of { codes : int array; dict : string array; valid : Bitset.t option }

type t = {
  rel : Relation.t;
  nrows : int;
  cols : col array;
  rev : (Value.t, int list) Hashtbl.t option array;
      (* lazily-built full-table reverse index per column; domain-local
         like the table itself (see [of_relation_cached]) *)
}

let relation t = t.rel
let nrows t = t.nrows
let col t i = t.cols.(i)
let tuple t i = Relation.tuple t.rel i

(* First index in [dict] holding a string >= [s] (so [Array.length dict]
   when every entry is smaller). [dict] is sorted and duplicate-free. *)
let lower_bound dict s =
  let lo = ref 0 and hi = ref (Array.length dict) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare dict.(mid) s < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rank dict s =
  let r = lower_bound dict s in
  (r, r < Array.length dict && String.equal dict.(r) s)

let of_relation rel =
  let tuples = Relation.tuples rel in
  let nrows = Array.length tuples in
  let schema = Relation.schema rel in
  let build_col j =
    match Schema.attr_type schema j with
    | Schema.T_int ->
        let data = Array.make nrows 0 in
        let valid = ref None in
        let mark_null i =
          let v =
            match !valid with
            | Some v -> v
            | None ->
                let v = Bitset.full nrows in
                valid := Some v;
                v
          in
          Bitset.clear v i
        in
        for i = 0 to nrows - 1 do
          match tuples.(i).(j) with
          | Value.Int x -> data.(i) <- x
          | Value.Null -> mark_null i
          | Value.Str _ | Value.Ratio _ ->
              invalid_arg "Col_table: non-int value in T_int column"
        done;
        C_int { data; valid = !valid }
    | Schema.T_string ->
        let strings = Array.make nrows "" in
        let present = ref [] in
        let valid = ref None in
        let mark_null i =
          let v =
            match !valid with
            | Some v -> v
            | None ->
                let v = Bitset.full nrows in
                valid := Some v;
                v
          in
          Bitset.clear v i
        in
        for i = 0 to nrows - 1 do
          match tuples.(i).(j) with
          | Value.Str s ->
              strings.(i) <- s;
              present := s :: !present
          | Value.Null -> mark_null i
          | Value.Int _ | Value.Ratio _ ->
              invalid_arg "Col_table: non-string value in T_string column"
        done;
        let dict =
          Array.of_list (List.sort_uniq String.compare !present)
        in
        let codes = Array.make nrows 0 in
        for i = 0 to nrows - 1 do
          (* Null rows keep code 0; their validity bit is clear. *)
          match !valid with
          | Some v when not (Bitset.get v i) -> ()
          | _ -> codes.(i) <- lower_bound dict strings.(i)
        done;
        C_str { codes; dict; valid = !valid }
  in
  let arity = Schema.arity schema in
  { rel; nrows; cols = Array.init arity build_col; rev = Array.make arity None }

(* Per-domain cache keyed by physical equality on the relation value.
   Databases are immutable and deltas are applied functionally, so a
   physically-equal relation always has the same columnar image. A
   small association list is enough: a build touches a handful of
   relations, and scanning a few entries with (==) is cheaper than any
   hashing scheme that would have to be safe under a moving GC. *)
let cache_cap = 32

let cache_key : (Relation.t * t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let of_relation_cached rel =
  let cache = Domain.DLS.get cache_key in
  match List.find_opt (fun (r, _) -> r == rel) !cache with
  | Some (_, t) -> t
  | None ->
      let t = of_relation rel in
      let kept =
        if List.length !cache >= cache_cap then
          List.filteri (fun i _ -> i < cache_cap - 1) !cache
        else !cache
      in
      cache := (rel, t) :: kept;
      t

(* Full-table reverse index for one column: every row id holding a
   value, Nulls bucketed under Value.Null. Built at most once per
   (table, column) pair and cached on the table, so the per-query
   reverse indexes over an all-rows selection (the common case — most
   plans place no single-table filter on level 0) share one build.
   Mutation is safe: tables are domain-local (see [of_relation_cached]).
   Buckets hold rows in descending order, matching a cons-push over an
   ascending row scan, so callers see the same lists a per-selection
   build would produce. *)
let rev_index t colidx =
  match t.rev.(colidx) with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create (max 16 t.nrows) in
      let push k row =
        Hashtbl.replace idx k
          (row :: Option.value (Hashtbl.find_opt idx k) ~default:[])
      in
      (match t.cols.(colidx) with
      | C_int { data; valid = None } ->
          for row = 0 to t.nrows - 1 do
            push (Value.Int data.(row)) row
          done
      | C_int { data; valid = Some v } ->
          for row = 0 to t.nrows - 1 do
            push
              (if Bitset.get v row then Value.Int data.(row) else Value.Null)
              row
          done
      | C_str { codes; dict; valid = None } ->
          for row = 0 to t.nrows - 1 do
            push (Value.Str dict.(codes.(row))) row
          done
      | C_str { codes; dict; valid = Some v } ->
          for row = 0 to t.nrows - 1 do
            push
              (if Bitset.get v row then Value.Str dict.(codes.(row))
               else Value.Null)
              row
          done);
      t.rev.(colidx) <- Some idx;
      idx

(* The stored value of one cell, as the row engine would see it. *)
let value t row colidx =
  match t.cols.(colidx) with
  | C_int { data; valid } -> (
      match valid with
      | Some v when not (Bitset.get v row) -> Value.Null
      | _ -> Value.Int data.(row))
  | C_str { codes; dict; valid } -> (
      match valid with
      | Some v when not (Bitset.get v row) -> Value.Null
      | _ -> Value.Str dict.(codes.(row)))

type t = { header : string array; rows : Value.t array array }

let compare_rows a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then compare (Array.length a) (Array.length b)
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let make ~header rows =
  Array.sort compare_rows rows;
  { header; rows }

let header t = t.header
let rows t = t.rows
let row_count t = Array.length t.rows

let equal a b =
  Array.length a.rows = Array.length b.rows
  && Array.length a.header = Array.length b.header
  &&
  let n = Array.length a.rows in
  let rec go i = i = n || (compare_rows a.rows.(i) b.rows.(i) = 0 && go (i + 1)) in
  go 0

let hash_value h v =
  let mix h x = (h * 0x01000193) lxor x in
  match v with
  | Value.Null -> mix h 1
  | Value.Int i -> mix (mix h 2) i
  | Value.Ratio (p, q) -> mix (mix (mix h 3) p) q
  | Value.Str s -> mix (mix h 4) (Hashtbl.hash s)

let hash t =
  Array.fold_left
    (fun h row -> Array.fold_left hash_value (h * 31) row)
    (Array.length t.rows) t.rows

let pp fmt t =
  Format.fprintf fmt "%s@." (String.concat " | " (Array.to_list t.header));
  Array.iter
    (fun row ->
      Format.fprintf fmt "%s@."
        (String.concat " | "
           (Array.to_list (Array.map Value.to_string row))))
    t.rows

let truncated_to k t =
  if Array.length t.rows <= k then t
  else { t with rows = Array.sub t.rows 0 k }

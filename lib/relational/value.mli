(** Typed atomic values.

    Numeric data is kept exact: integers for raw data (the generators
    store money in cents) and normalized rationals for averages. Exact
    arithmetic matters because conflict-set computation compares query
    answers for equality, and the delta evaluator must produce
    bit-identical answers to the full evaluator regardless of the order
    in which aggregates are accumulated. *)

type t =
  | Null
  | Int of int
  | Ratio of int * int
      (** Normalized rational: positive denominator, gcd 1. Produced by
          AVG; construct via {!ratio}. *)
  | Str of string

val ratio : int -> int -> t
(** [ratio num den] normalizes: reduces by gcd, moves the sign to the
    numerator, and collapses to [Int] when the denominator is 1.
    Requires [den <> 0]. *)

val compare_num : int -> int -> int -> int -> int
(** [compare_num p q r s] compares the exact rationals [p/q] and [r/s].
    Requires [q > 0] and [s > 0] (raises [Invalid_argument] otherwise).
    Overflow-safe at any magnitude: cross-multiplies while all four
    operands fit below [2^31], and otherwise switches to an exact
    continued-fraction descent (floor-quotient comparison, recursing on
    the reciprocal remainders). This is the single numeric-comparison
    kernel: {!compare} and the columnar predicate kernels both route
    rational comparisons through it. *)

val compare : t -> t -> int
(** Total order: [Null] < numerics (compared as rationals) < strings. *)

val equal : t -> t -> bool
(** [compare a b = 0]. *)

val pp : Format.formatter -> t -> unit
(** Print in SQL-literal style ([NULL], bare integers, quoted strings). *)

val to_string : t -> string
(** {!pp} rendered to a string. *)

val as_int : t -> int option
(** [Some i] for [Int i], [None] otherwise. *)

val as_string : t -> string option
(** [Some s] for [Str s], [None] otherwise. *)

type t =
  | Null
  | Int of int
  | Ratio of int * int
  | Str of string

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let ratio num den =
  assert (den <> 0);
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  let g = gcd (abs num) den in
  let g = if g = 0 then 1 else g in
  if den / g = 1 then Int (num / g) else Ratio (num / g, den / g)

(* Exact comparison of p/q vs r/s by cross-multiplication. Magnitudes in
   this codebase stay far below sqrt(max_int), so the products cannot
   overflow. *)
let compare_num p q r s = compare (p * s) (r * q)

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> compare x y
  | Int x, Ratio (r, s) -> compare_num x 1 r s
  | Ratio (p, q), Int y -> compare_num p q y 1
  | Ratio (p, q), Ratio (r, s) -> compare_num p q r s
  | (Int _ | Ratio _), Str _ -> -1
  | Str _, (Int _ | Ratio _) -> 1
  | Str x, Str y -> String.compare x y

let equal a b = compare a b = 0

let pp fmt = function
  | Null -> Format.pp_print_string fmt "NULL"
  | Int i -> Format.pp_print_int fmt i
  | Ratio (p, q) -> Format.fprintf fmt "%d/%d" p q
  | Str s -> Format.fprintf fmt "%S" s

let to_string v = Format.asprintf "%a" pp v
let as_int = function Int i -> Some i | Null | Ratio _ | Str _ -> None
let as_string = function Str s -> Some s | Null | Int _ | Ratio _ -> None

type t =
  | Null
  | Int of int
  | Ratio of int * int
  | Str of string

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let ratio num den =
  assert (den <> 0);
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  let g = gcd (abs num) den in
  let g = if g = 0 then 1 else g in
  if den / g = 1 then Int (num / g) else Ratio (num / g, den / g)

(* Exact comparison of p/q vs r/s (q, s > 0). Cross-multiplication is
   exact only while both products stay within native-int range; AVG
   numerators are sums over whole relations and can exceed
   sqrt(max_int), so past that bound we fall back to a continued-
   fraction descent: compare the floor quotients, then recurse on the
   reciprocals of the remainders. Remainders are strictly smaller than
   their divisors, so the recursion terminates, and every intermediate
   stays within native range (floor division/remainder only). *)
let rec compare_frac p q r s =
  (* Floor division with the remainder in [0, den): OCaml (/) truncates
     toward zero, so shift negative results down by one. The [d * den]
     products never overflow because |d * den| <= |num| by construction
     (d is the truncated quotient). *)
  let floor_divmod num den =
    let d = num / den in
    let m = num - (d * den) in
    if m < 0 then (d - 1, m + den) else (d, m)
  in
  let d1, m1 = floor_divmod p q and d2, m2 = floor_divmod r s in
  if d1 <> d2 then compare d1 d2
  else if m1 = 0 then if m2 = 0 then 0 else -1
  else if m2 = 0 then 1
  else
    (* m1/q vs m2/s with 0 < m1 < q, 0 < m2 < s: equivalent to the
       flipped comparison of the reciprocals s/m2 vs q/m1. *)
    compare_frac s m2 q m1

let compare_num p q r s =
  if q <= 0 || s <= 0 then
    invalid_arg "Value.compare_num: denominators must be positive";
  (* Fast path: with all four magnitudes below 2^31 the products are
     exact in a 63-bit native int. *)
  let small x = -0x4000_0000 < x && x < 0x4000_0000 in
  if small p && small q && small r && small s then compare (p * s) (r * q)
  else compare_frac p q r s

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> compare x y
  | Int x, Ratio (r, s) -> compare_num x 1 r s
  | Ratio (p, q), Int y -> compare_num p q y 1
  | Ratio (p, q), Ratio (r, s) -> compare_num p q r s
  | (Int _ | Ratio _), Str _ -> -1
  | Str _, (Int _ | Ratio _) -> 1
  | Str x, Str y -> String.compare x y

let equal a b = compare a b = 0

let pp fmt = function
  | Null -> Format.pp_print_string fmt "NULL"
  | Int i -> Format.pp_print_int fmt i
  | Ratio (p, q) -> Format.fprintf fmt "%d/%d" p q
  | Str s -> Format.fprintf fmt "%S" s

let to_string v = Format.asprintf "%a" pp v
let as_int = function Int i -> Some i | Null | Ratio _ | Str _ -> None
let as_string = function Str s -> Some s | Null | Int _ | Ratio _ -> None

(** Incremental query evaluation against single-tuple deltas.

    Conflict-set computation asks, for one query and thousands of
    support deltas, whether [Q(D ⊕ δ) <> Q(D)]. Re-running the query per
    delta costs |support| full evaluations per query; this module
    answers each test from the changed tuple's {e contribution} to the
    answer instead, which is constant-time for most of the paper's
    workload queries.

    Strategy selection (per query, at {!prepare} time):
    - {b rowwise}: no aggregates / grouping / DISTINCT / LIMIT — compare
      the old and new tuple's projected contributions as multisets.
    - {b rowwise-distinct}: as above with DISTINCT — decide via
      precomputed projection multiplicities whether the answer {e set}
      changes.
    - {b grouped}: aggregates, optionally GROUP BY where every selected
      field is a group key — recompute only the affected groups'
      aggregate outputs through {!Agg_state.output_with_delta}.
    - {b fallback}: anything else (LIMIT, DISTINCT+GROUP BY, self-joins,
      grouped queries selecting non-key fields) — full re-evaluation
      with the compiled plan.

    Every strategy is observationally equivalent to
    [not (Result_set.equal (Eval.run d' q) (Eval.run d q))]; the test
    suite checks this by property. *)

type t

val prepare : Database.t -> Query.t -> t
(** Compiles the query, enumerates its pre-aggregation rows once, and
    builds the per-strategy base state. *)

val query : t -> Query.t
(** The query this preparation was built for. *)

val base_result : t -> Result_set.t
(** [Q(D)], computed lazily from the same plan. *)

val strategy_name : t -> string
(** ["rowwise"], ["rowwise-distinct"], ["grouped"] or ["fallback"] —
    exposed for tests and diagnostics. *)

val differs : t -> Delta.t -> bool
(** Whether the perturbed instance changes the query answer. *)

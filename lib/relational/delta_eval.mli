(** Incremental query evaluation against single-tuple deltas.

    Conflict-set computation asks, for one query and thousands of
    support deltas, whether [Q(D ⊕ δ) <> Q(D)]. Re-running the query per
    delta costs |support| full evaluations per query; this module
    answers each test from the changed tuple's {e contribution} to the
    answer instead, which is constant-time for most of the paper's
    workload queries.

    Strategy selection (per query, at {!prepare} time):
    - {b rowwise}: no aggregates / grouping / DISTINCT / LIMIT — compare
      the old and new tuple's projected contributions as multisets.
    - {b rowwise-distinct}: as above with DISTINCT — decide via
      precomputed projection multiplicities whether the answer {e set}
      changes.
    - {b grouped}: aggregates, optionally GROUP BY where every selected
      field is a group key — recompute only the affected groups'
      aggregate outputs through {!Agg_state.output_with_delta}.
    - {b limited}: plain [LIMIT k] queries (no aggregates / grouping /
      DISTINCT / self-joins) — keep the full sorted projected multiset
      and compare only its first [k] rows against the delta-adjusted
      merge.
    - {b fallback}: anything else (DISTINCT+GROUP BY, self-joins,
      grouped queries selecting non-key fields) — full re-evaluation
      with the compiled plan. Always runs on the row engine: a full
      re-evaluation has no per-delta kernel to vectorize, and using one
      code path keeps the oracle and the columnar mode trivially
      identical there.

    Every strategy is observationally equivalent to
    [not (Result_set.equal (Eval.run d' q) (Eval.run d q))]; the test
    suite checks this by property.

    {2 Engines}

    Join enumeration behind the strategies runs on one of two engines:
    the original row-at-a-time {!Eval} engine, or the vectorized
    {!Col_eval} engine over {!Col_table} columnar images. [Check] runs
    both on every delta, returns the {e row} engine's answer (the
    oracle), and counts disagreements in {!check_mismatches}. The
    columnar engine additionally short-circuits [Cell_change] deltas on
    columns the query never references — the row oracle does not, so
    check mode exercises that shortcut too.

    The process-wide default comes from [QP_REL_ENGINE]
    ([row]/[columnar]/[check]; unknown values exit with status 2) and
    defaults to [Columnar]. *)

type engine = Row | Columnar | Check

val engine_name : engine -> string
(** ["row"], ["columnar"] or ["check"]. *)

val engine_of_string : string -> engine option
(** Inverse of {!engine_name} (case-insensitive); [None] if unknown. *)

val default_engine : unit -> engine
(** The process-wide default, initialized from [QP_REL_ENGINE]. *)

val set_default_engine : engine -> unit
(** Override the process-wide default (CLI flag support). *)

val check_mismatches : unit -> int
(** Process-wide count of deltas on which the two engines disagreed
    under [Check] (monotone; see {!reset_check_mismatches}). *)

val reset_check_mismatches : unit -> unit
(** Zero the mismatch counter (benchmarks isolate runs with this). *)

type t

val prepare : ?engine:engine -> Database.t -> Query.t -> t
(** Compiles the query, enumerates its pre-aggregation rows once, and
    builds the per-strategy base state on [engine] (default
    {!default_engine}). *)

val query : t -> Query.t
(** The query this preparation was built for. *)

val base_result : t -> Result_set.t
(** [Q(D)], computed lazily from the same plan. *)

val strategy_name : t -> string
(** ["rowwise"], ["rowwise-distinct"], ["grouped"], ["limited"] or
    ["fallback"] — exposed for tests and diagnostics. *)

val differs : t -> Delta.t -> bool
(** Whether the perturbed instance changes the query answer. *)

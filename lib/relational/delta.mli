(** Single-tuple perturbations of a database instance.

    A support-set element (a "neighboring database" in Qirana's sense)
    is represented as the seller's instance [D] plus one delta, which
    keeps the support compact and lets the evaluator work
    incrementally. *)

type t =
  | Cell_change of { relation : string; row : int; col : int; value : Value.t }
      (** The instance identical to [D] except that cell
          [(row, col)] of [relation] holds [value]. *)
  | Row_drop of { relation : string; row : int }
      (** The instance identical to [D] with one tuple removed. *)

val relation : t -> string
(** The (single) relation the delta touches. *)

val apply : Database.t -> t -> Database.t
(** Materialize the perturbed instance. [Cell_change] must name an
    existing cell and produce a well-typed value; [Row_drop] an existing
    row. *)

val changed_tuple : Database.t -> t -> Relation.tuple * Relation.tuple option
(** [changed_tuple db d] is [(old_tuple, new_tuple)]: the tuple the
    delta removes from [D] and the tuple it adds ([None] for
    [Row_drop]). This is the delta evaluator's entry point. *)

val is_noop : Database.t -> t -> bool
(** A [Cell_change] writing the value already present. Support sampling
    filters these out. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, e.g. for conflict-set dumps. *)

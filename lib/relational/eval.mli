(** Full query evaluation.

    A query is compiled once against the database's schemas into a
    {!plan} (column resolution, predicate pushdown, equi-join detection)
    and can then be run against any instance with the same schemas —
    which is exactly what conflict-set computation needs, since every
    support instance shares the seller instance's schemas. *)

type plan

val prepare : Database.t -> Query.t -> plan
(** Resolves and compiles. Raises [Invalid_argument] on unknown tables
    or columns, ill-typed aggregates, etc. *)

val run_plan : plan -> Database.t -> Result_set.t
(** Evaluates on an instance schema-compatible with the one the plan
    was prepared on. *)

val run : Database.t -> Query.t -> Result_set.t
(** [prepare] + [run_plan] in one step. *)

(** {2 Introspection used by {!Delta_eval}} *)

val query : plan -> Query.t
(** The query the plan was compiled from. *)

val from_env : plan -> (string * Schema.t) array
(** The alias/schema environment the plan compiled against. *)

val join_with_fixed :
  plan -> Database.t -> fixed:(int * Relation.tuple) -> Expr.env list
(** All [WHERE]-satisfying join environments in which [FROM] position
    [fst fixed] is bound to the given tuple (which need not occur in the
    instance — this is how the delta evaluator probes a changed tuple
    for its contribution to the answer). *)

val join_all : plan -> Database.t -> Expr.env list
(** Every [WHERE]-satisfying environment (the pre-aggregation rows). *)

type prejoined
(** Per-level candidate sets and hash indexes precomputed against one
    instance, so that repeated [join_fixed] probes (one per support
    delta) do not rebuild them. *)

val precompute_levels : plan -> Database.t -> prejoined
(** Build the {!type:prejoined} state for one instance. *)

val join_fixed : plan -> prejoined -> int * Relation.tuple -> Expr.env list
(** Like {!join_with_fixed} but reusing the precomputation for every
    level other than the fixed one. *)

val join_prejoined : plan -> prejoined -> Expr.env list
(** {!join_all} over already-precomputed levels. *)

val project : plan -> Expr.env -> Value.t array
(** The output row for one environment. Only valid for plans without
    aggregates. *)

val group_key : plan -> Expr.env -> Value.t array
(** [GROUP BY] key values for one environment. *)

val agg_row : plan -> Expr.env -> Value.t array
(** Aggregate-argument values for one environment, positionally
    matching {!agg_kinds}. *)

val agg_kinds : plan -> Agg_state.kind array
(** Accumulator kinds for the plan's aggregates, positionally. *)

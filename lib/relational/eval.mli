(** Full query evaluation.

    A query is compiled once against the database's schemas into a
    {!plan} (column resolution, predicate pushdown, equi-join detection)
    and can then be run against any instance with the same schemas —
    which is exactly what conflict-set computation needs, since every
    support instance shares the seller instance's schemas. *)

type plan

val prepare : Database.t -> Query.t -> plan
(** Resolves and compiles. Raises [Invalid_argument] on unknown tables
    or columns, ill-typed aggregates, etc. *)

val run_plan : plan -> Database.t -> Result_set.t
(** Evaluates on an instance schema-compatible with the one the plan
    was prepared on. *)

val run : Database.t -> Query.t -> Result_set.t
(** [prepare] + [run_plan] in one step. *)

(** {2 Introspection used by {!Delta_eval}} *)

val query : plan -> Query.t
(** The query the plan was compiled from. *)

val from_env : plan -> (string * Schema.t) array
(** The alias/schema environment the plan compiled against. *)

val join_with_fixed :
  plan -> Database.t -> fixed:(int * Relation.tuple) -> Expr.env list
(** All [WHERE]-satisfying join environments in which [FROM] position
    [fst fixed] is bound to the given tuple (which need not occur in the
    instance — this is how the delta evaluator probes a changed tuple
    for its contribution to the answer). *)

val join_all : plan -> Database.t -> Expr.env list
(** Every [WHERE]-satisfying environment (the pre-aggregation rows). *)

type prejoined
(** Per-level candidate sets and hash indexes precomputed against one
    instance, so that repeated [join_fixed] probes (one per support
    delta) do not rebuild them. *)

val precompute_levels : plan -> Database.t -> prejoined
(** Build the {!type:prejoined} state for one instance. *)

val join_fixed : plan -> prejoined -> int * Relation.tuple -> Expr.env list
(** Like {!join_with_fixed} but reusing the precomputation for every
    level other than the fixed one. *)

val join_prejoined : plan -> prejoined -> Expr.env list
(** {!join_all} over already-precomputed levels. *)

val project : plan -> Expr.env -> Value.t array
(** The output row for one environment. Only valid for plans without
    aggregates. *)

val group_key : plan -> Expr.env -> Value.t array
(** [GROUP BY] key values for one environment. *)

val agg_row : plan -> Expr.env -> Value.t array
(** Aggregate-argument values for one environment, positionally
    matching {!agg_kinds}. *)

val agg_kinds : plan -> Agg_state.kind array
(** Accumulator kinds for the plan's aggregates, positionally. *)

(** {2 Introspection used by {!Col_eval}}

    The columnar engine reuses this module's plan — column resolution,
    predicate classification, equi-join detection — and swaps only the
    data access layer. These accessors expose the classified plan
    pieces it drives its kernels and indexes from. *)

val table_names : plan -> string array
(** The relation name bound at each [FROM] position. *)

type filter_info = { f_ast : Expr.t; f_comp : Expr.compiled }
(** One non-equi conjunct: its AST (for kernel compilation) and its
    compiled closure (the scalar fallback). *)

val single_filters : plan -> int -> filter_info list
(** The conjuncts applied while building one level's candidate set:
    those reading only that level's tuple (constant conjuncts attach to
    level 0). *)

val cross_compiled : plan -> Expr.compiled array array
(** Per level, the compiled conjuncts evaluated inside the join
    recursion once that level is bound (they read several levels, all
    [<=] the attachment level). *)

val level_equis : plan -> int -> (int * Expr.compiled * int option) list
(** Each equi-join probe at a level as
    [(key_col, probe, probe_col0)]: the level's key column, the
    compiled probe expression over earlier levels, and — when the probe
    is exactly a level-0 column — that column's index (enables the
    reverse level-0 bucket of {!join_fixed}). *)

val result_of_envs : plan -> Expr.env list -> Result_set.t
(** Output construction (projection or grouping, DISTINCT, LIMIT) from
    already-enumerated join environments; {!run_plan} is
    {!join_all} composed with this. Both engines share it, so answer
    construction is engine-independent by construction. *)

(* Hand-written lexer + recursive-descent parser for the workload SQL
   fragment. Kept deliberately simple: one token of lookahead, errors
   carry the offending position. *)

type token =
  | Ident of string
  | Int_lit of int
  | Str_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Plus
  | Minus
  | Cmp_tok of Expr.cmp
  | Eof

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* --- lexer ----------------------------------------------------------- *)

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek () = if !i < n then Some input.[!i] else None in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '#'
  in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (emit Lparen; incr i)
    else if c = ')' then (emit Rparen; incr i)
    else if c = ',' then (emit Comma; incr i)
    else if c = '.' then (emit Dot; incr i)
    else if c = '*' then (emit Star; incr i)
    else if c = '+' then (emit Plus; incr i)
    else if c = '-' then (emit Minus; incr i)
    else if c = '=' then (emit (Cmp_tok Expr.Eq); incr i)
    else if c = '<' then begin
      incr i;
      match peek () with
      | Some '=' -> emit (Cmp_tok Expr.Le); incr i
      | Some '>' -> emit (Cmp_tok Expr.Ne); incr i
      | _ -> emit (Cmp_tok Expr.Lt)
    end
    else if c = '>' then begin
      incr i;
      match peek () with
      | Some '=' -> emit (Cmp_tok Expr.Ge); incr i
      | _ -> emit (Cmp_tok Expr.Gt)
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then fail "unterminated string literal"
        else if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2;
            go ()
          end
          else incr i
        else begin
          Buffer.add_char buf input.[!i];
          incr i;
          go ()
        end
      in
      go ();
      emit (Str_lit (Buffer.contents buf))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && ((input.[!i] >= '0' && input.[!i] <= '9') || input.[!i] = '_') do
        incr i
      done;
      let text = String.sub input start (!i - start) in
      let text = String.concat "" (String.split_on_char '_' text) in
      emit (Int_lit (int_of_string text))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (Ident (String.sub input start (!i - start)))
    end
    else fail "unexpected character %C at offset %d" c !i
  done;
  emit Eof;
  Array.of_list (List.rev !tokens)

(* --- parser ---------------------------------------------------------- *)

type state = { tokens : token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit i -> Printf.sprintf "integer %d" i
  | Str_lit s -> Printf.sprintf "string %S" s
  | Lparen -> "'('" | Rparen -> "')'" | Comma -> "','" | Dot -> "'.'"
  | Star -> "'*'" | Plus -> "'+'" | Minus -> "'-'"
  | Cmp_tok _ -> "comparison operator"
  | Eof -> "end of input"

let is_kw st kw =
  match peek st with
  | Ident s -> String.lowercase_ascii s = kw
  | _ -> false

let eat_kw st kw =
  if is_kw st kw then (advance st; true) else false

let expect_kw st kw =
  if not (eat_kw st kw) then
    fail "expected %s, found %s (token %d)" (String.uppercase_ascii kw)
      (describe (peek st)) st.pos

let expect st tok what =
  if peek st = tok then advance st
  else fail "expected %s, found %s (token %d)" what (describe (peek st)) st.pos

let ident st =
  match peek st with
  | Ident s -> advance st; s
  | t -> fail "expected identifier, found %s (token %d)" (describe t) st.pos

let agg_keywords = [ "count"; "sum"; "avg"; "min"; "max" ]

(* Reserved words may not appear as bare column references; catching
   them here turns "select from t" into a pointed error instead of a
   column named "from". *)
let reserved_keywords =
  [ "select"; "from"; "where"; "group"; "by"; "limit"; "and"; "or"; "not";
    "between"; "in"; "like"; "as"; "distinct"; "order"; "having"; "on" ]

let is_agg_call st =
  match (peek st, st.tokens.(st.pos + 1)) with
  | Ident s, Lparen -> List.mem (String.lowercase_ascii s) agg_keywords
  | _ -> false

let rec or_expr st =
  let left = and_expr st in
  if eat_kw st "or" then Expr.Or (left, or_expr st) else left

and and_expr st =
  let left = not_expr st in
  if eat_kw st "and" then Expr.And (left, and_expr st) else left

and not_expr st =
  if eat_kw st "not" then Expr.Not (not_expr st) else predicate st

and predicate st =
  let left = sum_expr st in
  match peek st with
  | Cmp_tok op ->
      advance st;
      Expr.Cmp (op, left, sum_expr st)
  | Ident kw -> (
      match String.lowercase_ascii kw with
      | "between" ->
          advance st;
          let lo = sum_expr st in
          expect_kw st "and";
          Expr.Between (left, lo, sum_expr st)
      | "in" ->
          advance st;
          expect st Lparen "'('";
          let rec values acc =
            let v =
              match peek st with
              | Int_lit i -> advance st; Value.Int i
              | Str_lit s -> advance st; Value.Str s
              | Minus ->
                  advance st;
                  (match peek st with
                  | Int_lit i -> advance st; Value.Int (-i)
                  | t -> fail "expected integer after '-', found %s" (describe t))
              | t -> fail "expected literal in IN list, found %s" (describe t)
            in
            if peek st = Comma then (advance st; values (v :: acc))
            else List.rev (v :: acc)
          in
          let vs = values [] in
          expect st Rparen "')'";
          Expr.In_list (left, vs)
      | "like" ->
          advance st;
          (match peek st with
          | Str_lit pattern -> advance st; Expr.Like (left, pattern)
          | t -> fail "expected pattern string after LIKE, found %s" (describe t))
      | "not" -> (
          advance st;
          match peek st with
          | Ident kw2 when String.lowercase_ascii kw2 = "like" ->
              advance st;
              (match peek st with
              | Str_lit pattern -> advance st; Expr.Not (Expr.Like (left, pattern))
              | t -> fail "expected pattern after NOT LIKE, found %s" (describe t))
          | _ ->
              (* plain expression followed by the NOT of another clause:
                 hand NOT back to the caller by rewinding *)
              st.pos <- st.pos - 1;
              left)
      | _ -> left)
  | _ -> left

and sum_expr st =
  let rec loop acc =
    match peek st with
    | Plus -> advance st; loop (Expr.Arith (Expr.Add, acc, term st))
    | Minus -> advance st; loop (Expr.Arith (Expr.Sub, acc, term st))
    | _ -> acc
  in
  loop (term st)

and term st =
  let rec loop acc =
    match peek st with
    | Star -> advance st; loop (Expr.Arith (Expr.Mul, acc, factor st))
    | _ -> acc
  in
  loop (factor st)

and factor st =
  match peek st with
  | Int_lit i -> advance st; Expr.int i
  | Str_lit s -> advance st; Expr.str s
  | Minus ->
      advance st;
      (match peek st with
      | Int_lit i -> advance st; Expr.int (-i)
      | t -> fail "expected integer after unary '-', found %s" (describe t))
  | Lparen ->
      advance st;
      let e = or_expr st in
      expect st Rparen "')'";
      e
  | Ident name when String.lowercase_ascii name = "null" ->
      advance st;
      Expr.Const Value.Null
  | Ident name when List.mem (String.lowercase_ascii name) reserved_keywords ->
      fail "expected expression, found keyword %s (token %d)"
        (String.uppercase_ascii name) st.pos
  | Ident name ->
      advance st;
      if peek st = Dot then begin
        advance st;
        let column = ident st in
        Expr.col ~table:name column
      end
      else Expr.col name
  | t -> fail "expected expression, found %s (token %d)" (describe t) st.pos

let aggregate st =
  let fn = String.lowercase_ascii (ident st) in
  expect st Lparen "'('";
  let agg =
    if fn = "count" && peek st = Star then begin
      advance st;
      Query.Count_star
    end
    else begin
      let distinct = eat_kw st "distinct" in
      let arg = sum_expr st in
      match (fn, distinct) with
      | "count", true -> Query.Count_distinct arg
      | "count", false -> Query.Count arg
      | "sum", false -> Query.Sum arg
      | "avg", false -> Query.Avg arg
      | "min", false -> Query.Min arg
      | "max", false -> Query.Max arg
      | _, true -> fail "DISTINCT is only supported inside COUNT"
      | _ -> assert false
    end
  in
  expect st Rparen "')'";
  agg

let default_item_name = function
  | Query.Field (e, _) -> Expr.to_sql e
  | Query.Aggregate (fn, _) -> (
      match fn with
      | Query.Count_star -> "count(*)"
      | Query.Count e -> Printf.sprintf "count(%s)" (Expr.to_sql e)
      | Query.Count_distinct e ->
          Printf.sprintf "count(distinct %s)" (Expr.to_sql e)
      | Query.Sum e -> Printf.sprintf "sum(%s)" (Expr.to_sql e)
      | Query.Avg e -> Printf.sprintf "avg(%s)" (Expr.to_sql e)
      | Query.Min e -> Printf.sprintf "min(%s)" (Expr.to_sql e)
      | Query.Max e -> Printf.sprintf "max(%s)" (Expr.to_sql e))

let select_item st =
  let item =
    if is_agg_call st then Query.Aggregate (aggregate st, "")
    else Query.Field (sum_expr st, "")
  in
  let name =
    if eat_kw st "as" then ident st
    else
      match item with
      | Query.Field (e, _) -> Expr.to_sql e
      | Query.Aggregate _ -> default_item_name item
  in
  match item with
  | Query.Field (e, _) -> Query.Field (e, name)
  | Query.Aggregate (fn, _) -> Query.Aggregate (fn, name)

let reserved =
  [ "where"; "group"; "limit"; "from"; "on"; "order"; "having" ]

let from_item st =
  let table = ident st in
  match peek st with
  | Ident alias when not (List.mem (String.lowercase_ascii alias) reserved) ->
      advance st;
      table ^ " " ^ alias
  | _ -> table

let parse_tokens st ~db ~name =
  expect_kw st "select";
  let distinct = eat_kw st "distinct" in
  let star_select = peek st = Star in
  let items =
    if star_select then begin
      advance st;
      []
    end
    else begin
      let rec loop acc =
        let item = select_item st in
        if peek st = Comma then (advance st; loop (item :: acc))
        else List.rev (item :: acc)
      in
      loop []
    end
  in
  expect_kw st "from";
  let rec from_loop acc =
    let f = from_item st in
    if peek st = Comma then (advance st; from_loop (f :: acc))
    else List.rev (f :: acc)
  in
  let from = from_loop [] in
  List.iter
    (fun entry ->
      let table = List.hd (String.split_on_char ' ' entry) in
      if Database.relation_opt db table = None then
        fail "unknown table %S" table)
    from;
  let where = if eat_kw st "where" then Some (or_expr st) else None in
  let group_by =
    if eat_kw st "group" then begin
      expect_kw st "by";
      let rec keys acc =
        let e = sum_expr st in
        if peek st = Comma then (advance st; keys (e :: acc))
        else List.rev (e :: acc)
      in
      keys []
    end
    else []
  in
  let limit =
    if eat_kw st "limit" then
      match peek st with
      | Int_lit k -> advance st; Some k
      | t -> fail "expected integer after LIMIT, found %s" (describe t)
    else None
  in
  (match peek st with
  | Eof -> ()
  | t -> fail "unexpected %s after the query (token %d)" (describe t) st.pos);
  let items =
    if star_select then
      Query.star db (Query.make ~name ~from [ Query.Field (Expr.int 1, "x") ])
    else items
  in
  Query.make ~name ~distinct ?where ~group_by ?limit ~from items

let truncate s n = if String.length s <= n then s else String.sub s 0 n ^ "..."

let parse ?name ~db sql =
  let name = Option.value name ~default:(truncate sql 60) in
  match
    let st = { tokens = lex sql; pos = 0 } in
    parse_tokens st ~db ~name
  with
  | q -> Ok q
  | exception Error msg -> Stdlib.Error msg
  | exception Invalid_argument msg -> Stdlib.Error msg

let parse_exn ?name ~db sql =
  match parse ?name ~db sql with
  | Ok q -> q
  | Error msg -> invalid_arg ("Sql.parse: " ^ msg)

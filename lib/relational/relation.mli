(** A relation instance: a schema plus an immutable array of tuples.

    Tuples are value arrays positionally aligned with the schema. The
    array itself must not be mutated after construction — support-set
    deltas are applied functionally (see {!Delta}). *)

type tuple = Value.t array

type t

val make : Schema.t -> tuple list -> t
(** Checks every tuple's arity and that values respect declared types
    ([Null] is allowed everywhere; [Ratio] only arises from query
    evaluation and is rejected in stored data). *)

val of_array : Schema.t -> tuple array -> t
(** Like {!make}, taking ownership of the array. *)

val schema : t -> Schema.t
(** The relation's schema. *)

val cardinality : t -> int
(** Number of tuples. *)

val tuple : t -> int -> tuple
(** [tuple r i] — row [i] ([0 <= i < cardinality r]). *)

val tuples : t -> tuple array
(** The backing array; callers must not mutate it. *)

val get : t -> int -> string -> Value.t
(** [get r row attr] is the value of [attr] in row [row]. *)

val replace_tuple : t -> int -> tuple -> t
(** Functional single-tuple substitution (copies the tuple array). *)

val drop_tuple : t -> int -> t
(** Functional single-tuple removal. *)

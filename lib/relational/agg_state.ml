type kind =
  | K_count_star
  | K_count
  | K_count_distinct
  | K_sum
  | K_avg
  | K_min
  | K_max

let kind_of_agg = function
  | Query.Count_star -> K_count_star
  | Query.Count _ -> K_count
  | Query.Count_distinct _ -> K_count_distinct
  | Query.Sum _ -> K_sum
  | Query.Avg _ -> K_avg
  | Query.Min _ -> K_min
  | Query.Max _ -> K_max

type slot =
  | S_star
  | S_count of { mutable nonnull : int }
  | S_sum of { mutable nonnull : int; mutable total : int }
  | S_values of values_slot
      (** per-value multiplicities, for DISTINCT / MIN / MAX *)

and values_slot = {
  tbl : (Value.t, int) Hashtbl.t;
  mutable cached_min : Value.t option option;
  mutable cached_max : Value.t option option;
}

type acc = { kinds : kind array; slots : slot array; mutable nrows : int }

let slot_of_kind = function
  | K_count_star -> S_star
  | K_count -> S_count { nonnull = 0 }
  | K_sum | K_avg -> S_sum { nonnull = 0; total = 0 }
  | K_count_distinct | K_min | K_max ->
      S_values { tbl = Hashtbl.create 8; cached_min = None; cached_max = None }

let create kinds =
  { kinds; slots = Array.map slot_of_kind kinds; nrows = 0 }

let int_arg kind v =
  match v with
  | Value.Int i -> i
  | Value.Null | Value.Ratio _ | Value.Str _ ->
      ignore kind;
      invalid_arg "Agg_state: SUM/AVG argument must be an integer"

let add acc args =
  acc.nrows <- acc.nrows + 1;
  Array.iteri
    (fun i slot ->
      let v = args.(i) in
      match slot with
      | S_star -> ()
      | S_count c -> if v <> Value.Null then c.nonnull <- c.nonnull + 1
      | S_sum s ->
          if v <> Value.Null then begin
            s.nonnull <- s.nonnull + 1;
            s.total <- s.total + int_arg acc.kinds.(i) v
          end
      | S_values vs ->
          if v <> Value.Null then begin
            let cur = Option.value (Hashtbl.find_opt vs.tbl v) ~default:0 in
            Hashtbl.replace vs.tbl v (cur + 1);
            vs.cached_min <- None;
            vs.cached_max <- None
          end)
    acc.slots

let rows acc = acc.nrows

let table_extreme better tbl =
  Hashtbl.fold
    (fun v count best ->
      if count <= 0 then best
      else
        match best with
        | None -> Some v
        | Some b -> if better v b then Some v else best)
    tbl None

let value_of_extreme = function None -> Value.Null | Some v -> v

let base_min vs =
  match vs.cached_min with
  | Some e -> e
  | None ->
      let e = table_extreme (fun a b -> Value.compare a b < 0) vs.tbl in
      vs.cached_min <- Some e;
      e

let base_max vs =
  match vs.cached_max with
  | Some e -> e
  | None ->
      let e = table_extreme (fun a b -> Value.compare a b > 0) vs.tbl in
      vs.cached_max <- Some e;
      e

let slot_output kind slot nrows =
  match (kind, slot) with
  | K_count_star, S_star -> Value.Int nrows
  | K_count, S_count c -> Value.Int c.nonnull
  | K_sum, S_sum s -> if s.nonnull = 0 then Value.Null else Value.Int s.total
  | K_avg, S_sum s ->
      if s.nonnull = 0 then Value.Null else Value.ratio s.total s.nonnull
  | K_count_distinct, S_values vs -> Value.Int (Hashtbl.length vs.tbl)
  | K_min, S_values vs -> value_of_extreme (base_min vs)
  | K_max, S_values vs -> value_of_extreme (base_max vs)
  | _ -> assert false

let output acc =
  Array.mapi (fun i slot -> slot_output acc.kinds.(i) slot acc.nrows) acc.slots

let empty_output kinds =
  Array.map
    (function
      | K_count_star | K_count | K_count_distinct -> Value.Int 0
      | K_sum | K_avg | K_min | K_max -> Value.Null)
    kinds

(* --- non-mutating delta view --------------------------------------- *)

let overlay_of i ~removed ~added =
  let overlay = Hashtbl.create 8 in
  let bump v d =
    if v <> Value.Null then
      let cur = Option.value (Hashtbl.find_opt overlay v) ~default:0 in
      Hashtbl.replace overlay v (cur + d)
  in
  List.iter (fun args -> bump args.(i) (-1)) removed;
  List.iter (fun args -> bump args.(i) 1) added;
  overlay

let count_after tbl overlay v =
  Option.value (Hashtbl.find_opt tbl v) ~default:0
  + Option.value (Hashtbl.find_opt overlay v) ~default:0

(* Recompute min/max over [base + overlay]. The fast path avoids the
   full scan when the (cached) base extreme survives the removals. *)
let extreme_after better ~base tbl overlay =
  let base_alive =
    match base with Some v -> count_after tbl overlay v > 0 | None -> false
  in
  let overlay_best =
    Hashtbl.fold
      (fun v _ best ->
        if count_after tbl overlay v <= 0 then best
        else
          match best with
          | None -> Some v
          | Some b -> if better v b then Some v else best)
      overlay None
  in
  if base_alive then
    match (base, overlay_best) with
    | Some b, Some o -> Some (if better o b then o else b)
    | Some b, None -> Some b
    | None, _ -> assert false
  else
    (* The base extreme vanished: full rescan over both key sets. *)
    let scan src best =
      Hashtbl.fold
        (fun v _ best ->
          if count_after tbl overlay v <= 0 then best
          else
            match best with
            | None -> Some v
            | Some b -> if better v b then Some v else best)
        src best
    in
    scan tbl (scan overlay None)

let distinct_after tbl overlay =
  Hashtbl.length tbl
  + Hashtbl.fold
      (fun v d acc ->
        if d = 0 then acc
        else
          let base = Option.value (Hashtbl.find_opt tbl v) ~default:0 in
          if base > 0 && base + d <= 0 then acc - 1
          else if base = 0 && d > 0 then acc + 1
          else acc)
      overlay 0

let output_with_delta acc ~removed ~added =
  let nrows = acc.nrows - List.length removed + List.length added in
  if nrows <= 0 then None
  else
    Some
      (Array.mapi
         (fun i slot ->
           let delta_nonnull =
             lazy
               (List.fold_left (fun a args -> if args.(i) <> Value.Null then a + 1 else a) 0 added
               - List.fold_left
                   (fun a args -> if args.(i) <> Value.Null then a + 1 else a)
                   0 removed)
           in
           match (acc.kinds.(i), slot) with
           | K_count_star, S_star -> Value.Int nrows
           | K_count, S_count c -> Value.Int (c.nonnull + Lazy.force delta_nonnull)
           | (K_sum | K_avg), S_sum s ->
               let dt =
                 List.fold_left
                   (fun a args ->
                     if args.(i) = Value.Null then a
                     else a + int_arg acc.kinds.(i) args.(i))
                   0 added
                 - List.fold_left
                     (fun a args ->
                       if args.(i) = Value.Null then a
                       else a + int_arg acc.kinds.(i) args.(i))
                     0 removed
               in
               let nonnull = s.nonnull + Lazy.force delta_nonnull in
               if nonnull = 0 then Value.Null
               else if acc.kinds.(i) = K_sum then Value.Int (s.total + dt)
               else Value.ratio (s.total + dt) nonnull
           | K_count_distinct, S_values vs ->
               Value.Int (distinct_after vs.tbl (overlay_of i ~removed ~added))
           | K_min, S_values vs ->
               value_of_extreme
                 (extreme_after
                    (fun a b -> Value.compare a b < 0)
                    ~base:(base_min vs) vs.tbl
                    (overlay_of i ~removed ~added))
           | K_max, S_values vs ->
               value_of_extreme
                 (extreme_after
                    (fun a b -> Value.compare a b > 0)
                    ~base:(base_max vs) vs.tbl
                    (overlay_of i ~removed ~added))
           | _ -> assert false)
         acc.slots)

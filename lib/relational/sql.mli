(** A parser for the SQL fragment the engine evaluates — single
    [SELECT] blocks with [DISTINCT], multi-table [FROM] with aliases,
    [WHERE] (comparisons, [BETWEEN], [IN], [LIKE], boolean connectives,
    integer arithmetic), [GROUP BY] and [LIMIT]. This is the dialect of
    the paper's workload queries (Table 7 and Appendix C), so pasted
    paper queries parse as written.

    [SELECT *] is expanded against the database's schemas (that is why
    parsing takes the database). Identifiers are case-insensitive;
    keywords may be written in any case; string literals use single
    quotes with ['']-escaping. *)

val parse :
  ?name:string ->
  db:Database.t ->
  string ->
  (Query.t, string) Stdlib.result
(** [parse ~db sql] returns the query or a message pinpointing the
    first offending token. The query [name] defaults to the SQL text
    itself (truncated). *)

val parse_exn : ?name:string -> db:Database.t -> string -> Query.t
(** Like {!parse}; raises [Invalid_argument] with the error message. *)

type t = { order : string list; by_name : (string, Relation.t) Hashtbl.t }

let key name = String.lowercase_ascii name

let make relations =
  let by_name = Hashtbl.create 16 in
  let order =
    List.map
      (fun r ->
        let name = Schema.name (Relation.schema r) in
        if Hashtbl.mem by_name (key name) then
          invalid_arg (Printf.sprintf "Database.make: duplicate relation %s" name);
        Hashtbl.replace by_name (key name) r;
        name)
      relations
  in
  { order; by_name }

let relation_opt t name = Hashtbl.find_opt t.by_name (key name)

let relation t name =
  match relation_opt t name with Some r -> r | None -> raise Not_found

let relations t = List.map (fun n -> relation t n) t.order
let names t = t.order

let total_rows t =
  List.fold_left (fun acc r -> acc + Relation.cardinality r) 0 (relations t)

let with_relation t r =
  let name = Schema.name (Relation.schema r) in
  if not (Hashtbl.mem t.by_name (key name)) then
    invalid_arg (Printf.sprintf "Database.with_relation: unknown relation %s" name);
  let by_name = Hashtbl.copy t.by_name in
  Hashtbl.replace by_name (key name) r;
  { t with by_name }

(** Relation schemas: attribute names with declared types. *)

type attr_type = T_int | T_string

type t

val make : name:string -> attrs:(string * attr_type) list -> t
(** Attribute names must be distinct (checked). *)

val name : t -> string
(** The relation name. *)

val arity : t -> int
(** Number of attributes. *)

val attrs : t -> (string * attr_type) list
(** Attributes in declaration order. *)

val index_of : t -> string -> int
(** Position of an attribute (case-insensitive). Raises [Not_found]. *)

val attr_name : t -> int -> string
(** Name of the attribute at a position. *)

val attr_type : t -> int -> attr_type
(** Declared type of the attribute at a position. *)

val equal : t -> t -> bool
(** Same name, same attributes in the same order. *)

(** Relation schemas: attribute names with declared types. *)

type attr_type = T_int | T_string

type t

val make : name:string -> attrs:(string * attr_type) list -> t
(** Attribute names must be distinct (checked). *)

val name : t -> string
val arity : t -> int
val attrs : t -> (string * attr_type) list

val index_of : t -> string -> int
(** Position of an attribute (case-insensitive). Raises [Not_found]. *)

val attr_name : t -> int -> string
val attr_type : t -> int -> attr_type

val equal : t -> t -> bool

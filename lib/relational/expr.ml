type col_ref = { table : string option; column : string }

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul

type t =
  | Col of col_ref
  | Const of Value.t
  | Arith of arith * t * t
  | Cmp of cmp * t * t
  | Between of t * t * t
  | In_list of t * Value.t list
  | Like of t * string
  | And of t * t
  | Or of t * t
  | Not of t

let col ?table column = Col { table; column }
let int i = Const (Value.Int i)
let str s = Const (Value.Str s)
let eq a b = Cmp (Eq, a, b)

let conj = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc x -> And (acc, x)) e rest)

let rec columns = function
  | Col c -> [ c ]
  | Const _ -> []
  | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      columns a @ columns b
  | Between (a, b, c) -> columns a @ columns b @ columns c
  | In_list (a, _) | Like (a, _) | Not a -> columns a

let cmp_sql = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let sql_value = function
  | Value.Null -> "NULL"
  | Value.Int i -> string_of_int i
  | Value.Ratio (p, q) -> Printf.sprintf "(%d/%d)" p q
  | Value.Str s -> "'" ^ s ^ "'"

let arith_sql = function Add -> "+" | Sub -> "-" | Mul -> "*"

let rec to_sql = function
  | Col { table = None; column } -> column
  | Col { table = Some t; column } -> t ^ "." ^ column
  | Const v -> sql_value v
  | Arith (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_sql a) (arith_sql op) (to_sql b)
  | Cmp (op, a, b) -> Printf.sprintf "%s %s %s" (to_sql a) (cmp_sql op) (to_sql b)
  | Between (e, lo, hi) ->
      Printf.sprintf "%s BETWEEN %s AND %s" (to_sql e) (to_sql lo) (to_sql hi)
  | In_list (e, vs) ->
      Printf.sprintf "%s IN (%s)" (to_sql e)
        (String.concat ", " (List.map sql_value vs))
  | Like (e, pat) -> Printf.sprintf "%s LIKE '%s'" (to_sql e) pat
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (to_sql a) (to_sql b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (to_sql a) (to_sql b)
  | Not a -> Printf.sprintf "NOT (%s)" (to_sql a)

type env = Relation.tuple array

type compiled = { eval : env -> Value.t; tables : int list }

let is_true = function
  | Value.Int 0 | Value.Null -> false
  | Value.Int _ | Value.Ratio _ | Value.Str _ -> true

let of_bool b = if b then Value.Int 1 else Value.Int 0

let resolve from { table; column } =
  let norm = String.lowercase_ascii in
  let matches_table i =
    match table with
    | None -> true
    | Some t ->
        let alias, schema = from.(i) in
        String.equal (norm t) (norm alias)
        || String.equal (norm t) (norm (Schema.name schema))
  in
  let hits = ref [] in
  Array.iteri
    (fun i (_, schema) ->
      if matches_table i then
        match Schema.index_of schema column with
        | j -> hits := (i, j) :: !hits
        | exception Not_found -> ())
    from;
  match !hits with
  | [ hit ] -> hit
  | [] ->
      invalid_arg
        (Printf.sprintf "Expr.compile: unresolved column %s"
           (to_sql (Col { table; column })))
  | _ :: _ :: _ ->
      invalid_arg
        (Printf.sprintf "Expr.compile: ambiguous column %s"
           (to_sql (Col { table; column })))

let rec compile from expr =
  match expr with
  | Col cref ->
      let ti, ci = resolve from cref in
      { eval = (fun env -> env.(ti).(ci)); tables = [ ti ] }
  | Const v -> { eval = (fun _ -> v); tables = [] }
  | Arith (op, a, b) ->
      let ca = compile from a and cb = compile from b in
      let f =
        match op with
        | Add -> Stdlib.( + )
        | Sub -> Stdlib.( - )
        | Mul -> Stdlib.( * )
      in
      combine2 ca cb (fun va vb ->
          match (va, vb) with
          | Value.Int x, Value.Int y -> Value.Int (f x y)
          | _ -> Value.Null)
  | Cmp (op, a, b) ->
      let ca = compile from a and cb = compile from b in
      let test =
        match op with
        | Eq -> fun c -> c = 0
        | Ne -> fun c -> c <> 0
        | Lt -> fun c -> c < 0
        | Le -> fun c -> c <= 0
        | Gt -> fun c -> c > 0
        | Ge -> fun c -> c >= 0
      in
      combine2 ca cb (fun va vb ->
          match (va, vb) with
          | Value.Null, _ | _, Value.Null -> of_bool false
          | _ -> of_bool (test (Value.compare va vb)))
  | Between (e, lo, hi) ->
      let ce = compile from e and clo = compile from lo and chi = compile from hi in
      {
        eval =
          (fun env ->
            match (ce.eval env, clo.eval env, chi.eval env) with
            | Value.Null, _, _ | _, Value.Null, _ | _, _, Value.Null ->
                of_bool false
            | v, l, h ->
                of_bool (Value.compare l v <= 0 && Value.compare v h <= 0));
        tables = merge_tables [ ce.tables; clo.tables; chi.tables ];
      }
  | In_list (e, vs) ->
      let ce = compile from e in
      {
        eval =
          (fun env ->
            match ce.eval env with
            | Value.Null -> of_bool false
            | v -> of_bool (List.exists (Value.equal v) vs));
        tables = ce.tables;
      }
  | Like (e, pattern) ->
      let ce = compile from e in
      {
        eval =
          (fun env ->
            match ce.eval env with
            | Value.Str s -> of_bool (Like.matches ~pattern s)
            | Value.Null | Value.Int _ | Value.Ratio _ -> of_bool false);
        tables = ce.tables;
      }
  | And (a, b) ->
      let ca = compile from a and cb = compile from b in
      {
        eval = (fun env -> of_bool (is_true (ca.eval env) && is_true (cb.eval env)));
        tables = merge_tables [ ca.tables; cb.tables ];
      }
  | Or (a, b) ->
      let ca = compile from a and cb = compile from b in
      {
        eval = (fun env -> of_bool (is_true (ca.eval env) || is_true (cb.eval env)));
        tables = merge_tables [ ca.tables; cb.tables ];
      }
  | Not a ->
      let ca = compile from a in
      { eval = (fun env -> of_bool (not (is_true (ca.eval env)))); tables = ca.tables }

and combine2 ca cb f =
  {
    eval = (fun env -> f (ca.eval env) (cb.eval env));
    tables = merge_tables [ ca.tables; cb.tables ];
  }

and merge_tables lists = List.sort_uniq compare (List.concat lists)

(* Defined last: these shadow the boolean operators, which the
   implementations above rely on. *)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let ( + ) a b = Arith (Add, a, b)
let ( - ) a b = Arith (Sub, a, b)
let ( * ) a b = Arith (Mul, a, b)

(** SQL [LIKE] pattern matching: [%] matches any (possibly empty)
    substring, [_] matches exactly one character, everything else is
    literal and case-sensitive (matching MySQL with a binary collation,
    which is what the workload queries assume). *)

val matches : pattern:string -> string -> bool
(** [matches ~pattern s] — does [s] match the [LIKE] pattern? *)

(** Support-set optimization — the paper's §7.2 problem statement:

    "Given queries Q1 ... Qm and a database D, does there exist a set of
    databases D1 ... Dm such that Qi(Di) ≠ Qi(D) but Qi(Dj) = Qi(D) for
    i ≠ j?"

    Such a support gives every hyperedge a {e unique item}, and then the
    layering algorithm (or the must-sell LP) extracts the {e full}
    revenue: price each unique item at its buyer's valuation. This
    module searches for per-query discriminating deltas greedily:
    candidates come from the query's footprint (and the near-miss flip
    construction of {!Support}), and each candidate is screened against
    every other query with the incremental evaluator. The search is
    heuristic — the decision problem's complexity is exactly the open
    question the paper poses — so the result reports which queries ended
    up with a dedicated item. *)

module Database = Qp_relational.Database
module Query = Qp_relational.Query
module Delta = Qp_relational.Delta

type result = {
  deltas : Delta.t array;  (** the constructed support *)
  dedicated : (int * int) array;
      (** (query index, support index of its discriminating delta) for
          every query the search served *)
  unserved : int list;  (** query indices with no discriminating delta *)
}

val construct :
  ?candidates_per_query:int ->
  rng:Qp_util.Rng.t ->
  Database.t ->
  Query.t list ->
  result
(** [candidates_per_query] bounds the candidate deltas screened per
    query (default 24). Runtime is O(m² · candidate screening) in the
    worst case — intended for moderate workloads; the benches use it at
    reduced scale. *)

val coverage : result -> float
(** Fraction of queries with a dedicated support item. *)

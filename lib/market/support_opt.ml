module Database = Qp_relational.Database
module Query = Qp_relational.Query
module Delta = Qp_relational.Delta
module Delta_eval = Qp_relational.Delta_eval
module Rng = Qp_util.Rng

type result = {
  deltas : Delta.t array;
  dedicated : (int * int) array;
  unserved : int list;
}

let construct ?(candidates_per_query = 24) ~rng db queries =
  let query_arr = Array.of_list queries in
  let preps = Array.map (Delta_eval.prepare db) query_arr in
  let chosen = ref [] and dedicated = ref [] and unserved = ref [] in
  let seen = Hashtbl.create 256 in
  let next_index = ref 0 in
  Array.iteri
    (fun qi q ->
      (* Candidates biased toward this query's footprint; the sampler
         may produce fewer than requested on tiny databases. *)
      let candidates =
        match
          Support.generate_query_aware ~uniform_share:0.0
            ~rng:(Rng.split rng (Printf.sprintf "q%d" qi))
            ~queries:[ q ] db ~n:candidates_per_query
        with
        | deltas -> deltas
        | exception Invalid_argument _ -> [||]
      in
      let discriminating d =
        Delta_eval.differs preps.(qi) d
        &&
        let ok = ref true in
        (try
           Array.iteri
             (fun j prep ->
               if j <> qi && Delta_eval.differs prep d then begin
                 ok := false;
                 raise Exit
               end)
             preps
         with Exit -> ());
        !ok
      in
      let found = Array.find_opt discriminating candidates in
      match found with
      | Some d ->
          let key = Format.asprintf "%a" Delta.pp d in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            chosen := d :: !chosen;
            dedicated := (qi, !next_index) :: !dedicated;
            incr next_index
          end
          else
            (* A previous query claimed the same delta; by construction
               that delta discriminates the earlier query, so it cannot
               also discriminate this one — unreachable, but keep the
               bookkeeping safe. *)
            unserved := qi :: !unserved
      | None -> unserved := qi :: !unserved)
    query_arr;
  {
    deltas = Array.of_list (List.rev !chosen);
    dedicated = Array.of_list (List.rev !dedicated);
    unserved = List.rev !unserved;
  }

let coverage r =
  let total = Array.length r.dedicated + List.length r.unserved in
  if total = 0 then 1.0
  else Float.of_int (Array.length r.dedicated) /. Float.of_int total

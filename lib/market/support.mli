(** Support-set generation (§3.2, following Qirana's strategy).

    The support is a set of "neighboring" databases: instances from [I]
    that differ from the seller's instance [D] in a few places. Each
    element is stored as a {!Qp_relational.Delta.t} against [D], which
    is both storage-efficient (Qirana's observation) and what makes
    incremental conflict-set computation possible. *)

module Delta = Qp_relational.Delta
module Database = Qp_relational.Database

type config = {
  row_drop_fraction : float;
      (** fraction of support elements that drop a tuple rather than
          perturb a cell (default 0.2) *)
  domain_sample_bias : float;
      (** probability that a perturbed cell draws its new value from the
          column's active domain rather than a local mutation
          (default 0.5); active-domain draws make perturbations visible
          to equality predicates, local mutations to range predicates *)
}

val default_config : config
(** [{ row_drop_fraction = 0.2; domain_sample_bias = 0.5 }]. *)

val generate :
  ?config:config -> rng:Qp_util.Rng.t -> Database.t -> n:int -> Delta.t array
(** [generate ~rng db ~n] draws [n] {e distinct}, non-no-op deltas.
    Relations are picked proportionally to their cardinality. Raises
    [Invalid_argument] if the database is empty or cannot yield [n]
    distinct deltas within a generous retry budget. *)

val generate_query_aware :
  ?config:config ->
  ?uniform_share:float ->
  rng:Qp_util.Rng.t ->
  queries:Qp_relational.Query.t list ->
  Database.t ->
  n:int ->
  Delta.t array
(** Like {!generate}, but biases cell perturbations toward the
    (relation, column) pairs the query workload actually reads, with a
    [uniform_share] (default 0.3) of plain uniform draws to keep
    coverage of untouched columns.

    This implements the "choosing the support set" direction from the
    paper's §7.2: at reduced data scale, uniformly sampled neighbors
    rarely intersect the footprint of selective queries, leaving their
    conflict sets empty; steering the perturbations toward referenced
    columns restores the hyperedge-size distribution the paper observes
    at full scale. The benches include an ablation comparing the two
    samplers. *)

val materialize : Database.t -> Delta.t -> Database.t
(** The actual neighboring instance (rarely needed — the pipeline works
    on deltas). *)

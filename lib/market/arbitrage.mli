(** Arbitrage-freeness verification (§3.1, Theorem 1).

    All pricing families in {!Qp_core.Pricing} are monotone and
    subadditive by construction, hence arbitrage-free; this module
    {e checks} that, both for the test suite and as a safety net a
    broker can run before publishing a pricing. Checks are witnesses
    over concrete bundles: exhaustive over an instance's edges plus
    randomized sampling over arbitrary bundles. *)

type violation =
  | Not_monotone of { small : int array; large : int array }
      (** [small ⊆ large] but priced strictly higher *)
  | Not_subadditive of { parts : int array list; whole : int array }
      (** the union priced strictly above the sum of its parts *)

val pp_violation : Format.formatter -> violation -> unit
(** Human-readable rendering of a violation witness. *)

val check_edges : Qp_core.Pricing.t -> Qp_core.Hypergraph.t -> violation option
(** Exhaustive pairwise check over the instance's hyperedges:
    monotonicity for every contained pair and subadditivity for every
    pair against its union. O(m^2) with small constants. *)

val check_random :
  rng:Qp_util.Rng.t ->
  n_items:int ->
  trials:int ->
  Qp_core.Pricing.t ->
  violation option
(** Randomized check over arbitrary bundles of the ground set. *)

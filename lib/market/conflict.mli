(** Conflict-set computation (§3.2): the bundle a query maps to.

    [CS(Q, D) = { D' in S | Q(D) <> Q(D') }] — the support instances a
    buyer can rule out after seeing the answer. Each query is prepared
    once ({!Qp_relational.Delta_eval}) and then tested against every
    support delta incrementally.

    Instance construction is the pipeline's dominant cost (the paper's
    §7 scalability remark), so {!hypergraph} fans the per-query work out
    over the {!Qp_util.Parallel} domain pool: one task per
    (query, delta-array) row, each preparing its query privately, with a
    sequential index-ordered merge — the resulting hypergraph is
    bit-identical to the sequential build at any job count. *)

module Database = Qp_relational.Database
module Query = Qp_relational.Query
module Delta = Qp_relational.Delta

(** Instrumentation of one {!hypergraph} build. *)
type stats = {
  queries : int;  (** number of hyperedges built (buyer queries) *)
  support : int;  (** support size [n] (items) *)
  fallback_queries : int;  (** queries that used full re-evaluation *)
  failed_queries : (string * string) list;
      (** queries dropped from the hypergraph after failing twice
          (initial task + one sequential retry): query name and the
          second attempt's error. Empty in healthy builds. *)
  strategies : (string * int) list;
      (** query count per {!Qp_relational.Delta_eval.strategy_name},
          sorted by name — the delta-eval vs fallback split *)
  engine : string;
      (** {!Qp_relational.Delta_eval.engine_name} of the engine the
          build ran on ("row", "columnar" or "check") *)
  check_mismatches : int;
      (** cross-engine disagreements observed during this build; always
          [0] outside check mode, and expected [0] within it *)
  jobs : int;  (** worker-pool size actually used for the build *)
  query_seconds : float array;
      (** per-query prepare+scan wall-clock seconds, in workload order *)
  worker_busy : float array;
      (** seconds each pool worker spent computing conflict sets;
          worker 0 is the calling domain *)
  elapsed : float;  (** wall-clock seconds for the whole computation *)
}

val conflict_set : Database.t -> Query.t -> Delta.t array -> int array
(** Sorted support indices in conflict with one query. *)

val hypergraph :
  ?on_progress:(done_:int -> total:int -> unit) ->
  ?jobs:int ->
  ?engine:Qp_relational.Delta_eval.engine ->
  Database.t ->
  (Query.t * float) list ->
  Delta.t array ->
  Qp_core.Hypergraph.t * stats
(** Build the pricing instance for a valued workload: item [i] is
    support delta [i]; each [(query, valuation)] becomes one hyperedge
    named after the query.

    Queries are distributed over the {!Qp_util.Parallel} pool ([jobs]
    overrides [QP_JOBS]); the merge is sequential in workload order, so
    the hypergraph (edge order, items, valuations) is bit-identical at
    any job count. [engine] selects the relational engine per
    {!Qp_relational.Delta_eval.prepare} (default
    {!Qp_relational.Delta_eval.default_engine}), resolved once before
    fan-out so every worker uses the same engine; in check mode,
    disagreements land in [check_mismatches] and the
    ["conflict.rel_check_mismatches"] counter. [on_progress] fires from the merge side only — once
    per query with [done_] strictly increasing from 1 to [total] —
    never from a worker domain.

    Robustness: a query whose task raises (including an injected
    ["conflict.query"] fault, key = workload index) is retried once
    sequentially during the merge with [attempt = 1]; failing again
    drops it from the hypergraph — a partial market instead of an
    aborted build — recorded in [failed_queries], the
    ["conflict.query_failures"] counter and a ["conflict.query_failed"]
    event (retries bump ["conflict.query_retries"]). *)

val query_time_histogram : ?buckets:int -> stats -> string
(** ASCII histogram (log counts) of per-query build times in
    microseconds — the "where the time goes" view of a build. *)

val pp_stats : Format.formatter -> stats -> unit
(** Multi-line human-readable rendering of a build's instrumentation
    (totals, strategy split, worker utilization, time histogram). *)

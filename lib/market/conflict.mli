(** Conflict-set computation (§3.2): the bundle a query maps to.

    [CS(Q, D) = { D' in S | Q(D) <> Q(D') }] — the support instances a
    buyer can rule out after seeing the answer. Each query is prepared
    once ({!Qp_relational.Delta_eval}) and then tested against every
    support delta incrementally. *)

module Database = Qp_relational.Database
module Query = Qp_relational.Query
module Delta = Qp_relational.Delta

type stats = {
  queries : int;
  support : int;
  fallback_queries : int;  (** queries that used full re-evaluation *)
  elapsed : float;  (** wall-clock seconds for the whole computation *)
}

val conflict_set : Database.t -> Query.t -> Delta.t array -> int array
(** Sorted support indices in conflict with one query. *)

val hypergraph :
  ?on_progress:(done_:int -> total:int -> unit) ->
  Database.t ->
  (Query.t * float) list ->
  Delta.t array ->
  Qp_core.Hypergraph.t * stats
(** Build the pricing instance for a valued workload: item [i] is
    support delta [i]; each [(query, valuation)] becomes one hyperedge
    named after the query. *)

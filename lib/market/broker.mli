(** End-to-end data-market broker: the Qirana-like runtime the paper's
    pipeline sits on.

    Lifecycle:
    + {!create} — fix the seller's instance and sample the support set;
    + {!add_buyer} — register the query workload with valuations
      (obtained from market research, §3.3);
    + {!build} — map every buyer query to its conflict-set hyperedge;
    + {!price} — run one of the revenue-maximization algorithms;
    + {!quote} / {!purchase} — serve queries (including fresh ones that
      were never part of the priced workload) at arbitrage-free prices,
      collecting revenue.

    Out-of-order calls raise [Invalid_argument] with a description of
    the missing step. *)

module Database = Qp_relational.Database
module Query = Qp_relational.Query
module Result_set = Qp_relational.Result_set
module Delta = Qp_relational.Delta

type t

val create :
  ?seed:int ->
  ?support_size:int ->
  ?support_config:Support.config ->
  Database.t ->
  t
(** Default seed 42, support size 256. The support set is sampled
    lazily, at the first {!build}/{!support} call: if buyers are
    registered by then, sampling is query-aware
    ({!Support.generate_query_aware}), otherwise uniform. *)

val database : t -> Database.t
(** The seller's instance [D]. *)

val support : t -> Delta.t array
(** Forces the sampling if it has not happened yet. *)

val add_buyer : t -> valuation:float -> Query.t -> unit
(** Register one buyer query with its (non-negative) valuation;
    invalidates any previous {!build} and pricing. *)

val buyers : t -> (Query.t * float) list
(** Registered buyers, in registration order. *)

val build :
  ?on_progress:(done_:int -> total:int -> unit) -> ?jobs:int -> t -> unit
(** Computes every buyer's conflict set on the {!Qp_util.Parallel} pool
    ([jobs] overrides [QP_JOBS]; the result is identical at any job
    count); idempotent until the buyer list changes. [on_progress] fires
    monotonically from the merge side (see {!Conflict.hypergraph}). *)

val hypergraph : t -> Qp_core.Hypergraph.t
(** Requires {!build}. *)

val build_stats : t -> Conflict.stats
(** Requires {!build}. *)

val price : t -> algorithm:string -> Qp_core.Pricing.t
(** Runs the named algorithm (a {!Qp_core.Algorithms} key) on the built
    hypergraph, stores the result as the active pricing, and returns
    it. Requires {!build}. *)

val set_pricing : t -> Qp_core.Pricing.t -> unit
(** Install a pricing computed elsewhere. *)

val active_pricing : t -> Qp_core.Pricing.t
(** Requires {!price} or {!set_pricing}. *)

val expected_revenue : t -> float
(** Revenue of the active pricing over the registered buyers. *)

val quote : t -> Query.t -> float
(** Price for an arbitrary query: its conflict set against the support
    is computed on the fly and priced with the active pricing —
    arbitrage-freeness extends to queries outside the workload because
    the price is still [f(CS(Q, D))] for the same monotone subadditive
    [f]. *)

val purchase :
  t -> budget:float -> Query.t -> [ `Sold of float * Result_set.t | `Declined of float ]
(** Quote the query; if the buyer's budget covers it, record the sale
    and return the answer with the price paid, otherwise decline. *)

val revenue_collected : t -> float
(** Total from {!purchase} and {!purchase_as} sales. *)

(** {2 History-aware pricing}

    Upadhyaya et al. (cited in the paper's §2) study history-aware
    pricing with refunds: a returning buyer should not pay twice for
    overlapping information. The broker implements the refund folded
    into the charge: a named account is charged the {e marginal} price
    [f(H ∪ CS(Q)) - f(H)] where [H] is the union of the bundles it
    already bought. Monotonicity makes the marginal non-negative and
    subadditivity caps it by the standalone price [f(CS(Q))], so the
    scheme never overcharges relative to fresh purchases and stays
    arbitrage-free for each account's own history. *)

val purchase_as :
  t ->
  account:string ->
  budget:float ->
  Query.t ->
  [ `Sold of float * Result_set.t | `Declined of float ]
(** Quote the marginal price for this account; on success the account's
    history absorbs the query's conflict set. *)

val account_history : t -> string -> int array
(** Sorted support items the account has already paid for (empty for
    unknown accounts). *)

val account_spent : t -> string -> float
(** Total the account has paid across its purchases (0 for unknown
    accounts). *)

module Database = Qp_relational.Database
module Query = Qp_relational.Query
module Result_set = Qp_relational.Result_set
module Delta = Qp_relational.Delta
module Eval = Qp_relational.Eval
module Hypergraph = Qp_core.Hypergraph
module Pricing = Qp_core.Pricing
module Algorithms = Qp_core.Algorithms
module Rng = Qp_util.Rng

type built = { hypergraph : Hypergraph.t; stats : Conflict.stats }

type account = { mutable history : int array; mutable spent : float }

type t = {
  db : Database.t;
  seed : int;
  support_size : int;
  support_config : Support.config option;
  mutable deltas : Delta.t array option;
  mutable buyers : (Query.t * float) list;  (* reversed registration order *)
  mutable built : built option;
  mutable pricing : Pricing.t option;
  mutable collected : float;
  accounts : (string, account) Hashtbl.t;
}

let create ?(seed = 42) ?(support_size = 256) ?support_config db =
  {
    db;
    seed;
    support_size;
    support_config;
    deltas = None;
    buyers = [];
    built = None;
    pricing = None;
    collected = 0.0;
    accounts = Hashtbl.create 8;
  }

let database t = t.db

(* The support is sampled lazily so that it can be query-aware: if the
   buyer workload is known by the time the support is needed, neighbors
   are steered toward the queries' footprints (see {!Support}). *)
let support t =
  match t.deltas with
  | Some deltas -> deltas
  | None ->
      let rng = Rng.split (Rng.create t.seed) "support" in
      let deltas =
        match t.buyers with
        | [] ->
            Support.generate ?config:t.support_config ~rng t.db
              ~n:t.support_size
        | buyers ->
            Support.generate_query_aware ?config:t.support_config ~rng
              ~queries:(List.rev_map fst buyers)
              t.db ~n:t.support_size
      in
      t.deltas <- Some deltas;
      deltas

let add_buyer t ~valuation q =
  if valuation < 0.0 then invalid_arg "Broker.add_buyer: negative valuation";
  t.buyers <- (q, valuation) :: t.buyers;
  t.built <- None;
  t.pricing <- None

let buyers t = List.rev t.buyers

let build ?on_progress ?jobs t =
  match t.built with
  | Some _ -> ()
  | None ->
      let h, stats =
        Conflict.hypergraph ?on_progress ?jobs t.db (buyers t) (support t)
      in
      t.built <- Some { hypergraph = h; stats }

let require_built t =
  match t.built with
  | Some b -> b
  | None -> invalid_arg "Broker: call build before pricing or quoting"

let hypergraph t = (require_built t).hypergraph
let build_stats t = (require_built t).stats

let price t ~algorithm =
  let h = (require_built t).hypergraph in
  let spec =
    match Algorithms.find algorithm with
    | spec -> spec
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf "Broker.price: unknown algorithm %S (try one of %s)"
             algorithm
             (String.concat ", " Algorithms.keys))
  in
  let p = spec.Algorithms.solve h in
  t.pricing <- Some p;
  p

let set_pricing t p = t.pricing <- Some p

let active_pricing t =
  match t.pricing with
  | Some p -> p
  | None -> invalid_arg "Broker: no active pricing (call price or set_pricing)"

let expected_revenue t =
  Pricing.revenue (active_pricing t) (require_built t).hypergraph

let quote t q =
  let p = active_pricing t in
  let items = Conflict.conflict_set t.db q (support t) in
  Pricing.price_items p items

let purchase t ~budget q =
  let price = quote t q in
  if price <= budget then begin
    t.collected <- t.collected +. price;
    `Sold (price, Eval.run t.db q)
  end
  else `Declined price

let revenue_collected t = t.collected

(* --- history-aware pricing ------------------------------------------- *)

let account t name =
  match Hashtbl.find_opt t.accounts name with
  | Some a -> a
  | None ->
      let a = { history = [||]; spent = 0.0 } in
      Hashtbl.replace t.accounts name a;
      a

let union_sorted a b =
  Array.of_list
    (List.sort_uniq compare (Array.to_list a @ Array.to_list b))

let purchase_as t ~account:name ~budget q =
  let pricing = active_pricing t in
  let acc = account t name in
  let items = Conflict.conflict_set t.db q (support t) in
  let combined = union_sorted acc.history items in
  let marginal =
    Float.max 0.0
      (Pricing.price_items pricing combined
      -. Pricing.price_items pricing acc.history)
  in
  if marginal <= budget then begin
    acc.history <- combined;
    acc.spent <- acc.spent +. marginal;
    t.collected <- t.collected +. marginal;
    `Sold (marginal, Eval.run t.db q)
  end
  else `Declined marginal

let account_history t name =
  match Hashtbl.find_opt t.accounts name with
  | Some a -> Array.copy a.history
  | None -> [||]

let account_spent t name =
  match Hashtbl.find_opt t.accounts name with
  | Some a -> a.spent
  | None -> 0.0

module Delta = Qp_relational.Delta
module Database = Qp_relational.Database
module Relation = Qp_relational.Relation
module Schema = Qp_relational.Schema
module Value = Qp_relational.Value
module Rng = Qp_util.Rng

type config = {
  row_drop_fraction : float;
  domain_sample_bias : float;
}

let default_config = { row_drop_fraction = 0.2; domain_sample_bias = 0.5 }

(* Draw a replacement value for cell (row, col): either another value
   observed in the same column (active domain) or a local mutation of
   the current value. *)
let perturbed_value rng config (r : Relation.t) row col =
  let current = (Relation.tuple r row).(col) in
  let from_domain () =
    let n = Relation.cardinality r in
    let tries = min 32 n in
    let rec go i =
      if i >= tries then None
      else
        let v = (Relation.tuple r (Rng.int rng n)).(col) in
        if Value.equal v current then go (i + 1) else Some v
    in
    go 0
  in
  let local_mutation () =
    match current with
    | Value.Int i ->
        let offset = 1 + Rng.int rng 10 in
        Value.Int (if Rng.bool rng then i + offset else i - offset)
    | Value.Str s -> Value.Str (s ^ "~")
    | Value.Null -> Value.Int (Rng.int rng 1000)
    | Value.Ratio _ -> assert false (* rationals never occur in stored data *)
  in
  if Rng.float rng 1.0 < config.domain_sample_bias then
    match from_domain () with Some v -> v | None -> local_mutation ()
  else local_mutation ()

let dedup_loop ~rng:_ db ~n ~draw =
  let seen = Hashtbl.create (2 * n) in
  let out = ref [] and count = ref 0 in
  let budget = ref (100 * n) in
  while !count < n && !budget > 0 do
    decr budget;
    let delta = draw () in
    let key = Format.asprintf "%a" Delta.pp delta in
    if (not (Hashtbl.mem seen key)) && not (Delta.is_noop db delta) then begin
      Hashtbl.replace seen key ();
      out := delta :: !out;
      incr count
    end
  done;
  if !count < n then
    invalid_arg
      (Printf.sprintf
         "Support.generate: could only draw %d of %d distinct deltas" !count n);
  Array.of_list (List.rev !out)

let uniform_draw config ~rng db =
  let relations = Array.of_list (Database.relations db) in
  let total = Database.total_rows db in
  if total = 0 then invalid_arg "Support.generate: empty database";
  let pick_relation () =
    let target = Rng.int rng total in
    let rec go i acc =
      let c = Relation.cardinality relations.(i) in
      if target < acc + c then relations.(i) else go (i + 1) (acc + c)
    in
    go 0 0
  in
  fun () ->
    let r = pick_relation () in
    let name = Schema.name (Relation.schema r) in
    let row = Rng.int rng (Relation.cardinality r) in
    if Rng.float rng 1.0 < config.row_drop_fraction then
      Delta.Row_drop { relation = name; row }
    else
      let col = Rng.int rng (Schema.arity (Relation.schema r)) in
      let value = perturbed_value rng config r row col in
      Delta.Cell_change { relation = name; row; col; value }

let generate ?(config = default_config) ~rng db ~n =
  dedup_loop ~rng db ~n ~draw:(uniform_draw config ~rng db)

(* Resolve a column reference against a query's FROM list the same way
   the evaluator does (alias or table name, unique attribute fallback),
   yielding the concrete (relation, column index) the query reads. *)
let referenced_cells db (q : Qp_relational.Query.t) =
  let from =
    List.map
      (fun { Qp_relational.Query.table; alias } ->
        match Database.relation_opt db table with
        | Some r ->
            Some (Option.value alias ~default:table, table, Relation.schema r)
        | None -> None)
      q.Qp_relational.Query.from
    |> List.filter_map Fun.id
  in
  let norm = String.lowercase_ascii in
  let resolve { Qp_relational.Expr.table = tref; column } =
    let hits =
      List.filter_map
        (fun (alias, table, schema) ->
          let table_ok =
            match tref with
            | None -> true
            | Some t -> norm t = norm alias || norm t = norm table
          in
          if not table_ok then None
          else
            match Schema.index_of schema column with
            | col -> Some (norm table, col)
            | exception Not_found -> None)
        from
    in
    match hits with [ hit ] -> Some hit | _ -> None
  in
  let exprs =
    Option.to_list q.Qp_relational.Query.where
    @ q.Qp_relational.Query.group_by
    @ List.concat_map
        (function
          | Qp_relational.Query.Field (e, _) -> [ e ]
          | Qp_relational.Query.Aggregate (fn, _) -> (
              match fn with
              | Qp_relational.Query.Count_star -> []
              | Count e | Count_distinct e | Sum e | Avg e | Min e | Max e ->
                  [ e ]))
        q.Qp_relational.Query.select
  in
  List.filter_map resolve
    (List.concat_map Qp_relational.Expr.columns exprs)

module Q = Qp_relational.Query
module E = Qp_relational.Expr

type footprint = {
  fp_relation : string;
  fp_rows : int list;  (** rows satisfying all single conjuncts *)
  fp_flips : (int * Value.t * int list) list;
      (** (column, satisfying value, near-miss rows): perturbing the
          column of a near-miss row to the value flips the row into the
          query's result — Q(D_i) <> Q(D) by construction (§7.2) *)
}

let rec conjuncts = function
  | E.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* A value making [ast] true when written into its column, for the
   predicate shapes the workloads use. *)
let satisfying_value = function
  | E.Cmp (E.Eq, E.Col _, E.Const v) | E.Cmp (E.Eq, E.Const v, E.Col _) ->
      Some v
  | E.In_list (E.Col _, v :: _) -> Some v
  | E.Between (E.Col _, E.Const lo, E.Const _) -> Some lo
  | _ -> None

let column_of_single env_schemas position = function
  | E.Cmp (_, E.Col cr, _) | E.Cmp (_, _, E.Col cr)
  | E.In_list (E.Col cr, _) | E.Between (E.Col cr, _, _) -> (
      let _, schema = env_schemas.(position) in
      match Schema.index_of schema cr.E.column with
      | col -> Some col
      | exception Not_found -> None)
  | _ -> None

(* The footprint of [q] at FROM [position]: rows satisfying all the
   single-table conjuncts there, plus for each conjunct the "near-miss"
   rows satisfying every other conjunct together with a cell write that
   would make the dropped conjunct true. *)
let footprint_rows db (q : Q.t) position =
  let from = Array.of_list q.Q.from in
  let env_schemas =
    Array.map
      (fun { Q.table; alias } ->
        ( Option.value alias ~default:table,
          Relation.schema (Database.relation db table) ))
      from
  in
  let singles =
    match q.Q.where with
    | None -> []
    | Some w ->
        List.filter_map
          (fun ast ->
            match E.compile env_schemas ast with
            | comp when comp.E.tables = [ position ] -> Some (ast, comp)
            | _ -> None
            | exception Invalid_argument _ -> None)
          (conjuncts w)
  in
  let rel = Database.relation db from.(position).Q.table in
  let env = Array.make (Array.length from) [||] in
  let rows_passing preds =
    let rows = ref [] in
    for row = Relation.cardinality rel - 1 downto 0 do
      env.(position) <- Relation.tuple rel row;
      if List.for_all (fun (_, c) -> E.is_true (c.E.eval env)) preds then
        rows := row :: !rows
    done;
    !rows
  in
  let fp_rows = rows_passing singles in
  let fp_flips =
    if fp_rows <> [] then []
    else
      List.filter_map
        (fun (ast, _) ->
          match
            (column_of_single env_schemas position ast, satisfying_value ast)
          with
          | Some col, Some v ->
              let others = List.filter (fun (a, _) -> a != ast) singles in
              let near = rows_passing others in
              if near = [] then None else Some (col, v, near)
          | _ -> None)
        singles
  in
  { fp_relation = from.(position).Q.table; fp_rows; fp_flips }

let generate_query_aware ?(config = default_config) ?(uniform_share = 0.25)
    ~rng ~queries db ~n =
  let weights = Hashtbl.create 64 in
  let per_query_cells = Hashtbl.create 64 in
  List.iteri
    (fun qi q ->
      let cells = referenced_cells db q in
      Hashtbl.replace per_query_cells qi cells;
      List.iter
        (fun cell ->
          Hashtbl.replace weights cell
            (1 + Option.value (Hashtbl.find_opt weights cell) ~default:0))
        cells)
    queries;
  let cells = Array.of_list (Hashtbl.fold (fun k v acc -> (k, v) :: acc) weights []) in
  if Array.length cells = 0 then generate ~config ~rng db ~n
  else begin
    let total_weight = Array.fold_left (fun a (_, w) -> a + w) 0 cells in
    let pick_cell () =
      let target = Rng.int rng total_weight in
      let rec go i acc =
        let _, w = cells.(i) in
        if target < acc + w then fst cells.(i) else go (i + 1) (acc + w)
      in
      go 0 0
    in
    let query_arr = Array.of_list queries in
    let footprints = Hashtbl.create 256 in
    let footprint qi position =
      match Hashtbl.find_opt footprints (qi, position) with
      | Some f -> f
      | None ->
          let f = footprint_rows db query_arr.(qi) position in
          Hashtbl.replace footprints (qi, position) f;
          f
    in
    let uniform = uniform_draw config ~rng db in
    let next_query = ref 0 in
    let cell_change relation row col =
      let r = Database.relation db relation in
      let value = perturbed_value rng config r row col in
      Delta.Cell_change { relation; row; col; value }
    in
    let weighted_cell () =
      let relation, col = pick_cell () in
      let r = Database.relation db relation in
      let row = Rng.int rng (Relation.cardinality r) in
      if Rng.float rng 1.0 < config.row_drop_fraction then
        Delta.Row_drop { relation; row }
      else cell_change relation row col
    in
    (* Round-robin over queries: perturb a cell inside the query's own
       footprint so even highly selective queries get conflicting
       neighbors — the paper's §7.2 "choose the support so edges are
       non-empty" direction. *)
    let targeted () =
      let qi = !next_query mod Array.length query_arr in
      incr next_query;
      let q = query_arr.(qi) in
      let n_from = List.length q.Qp_relational.Query.from in
      let position = Rng.int rng n_from in
      let { fp_relation = relation; fp_rows = rows; fp_flips } =
        footprint qi position
      in
      match (rows, fp_flips) with
      | [], [] -> weighted_cell ()
      | [], flips ->
          (* No row matches the query here: flip a near-miss row into
             the result instead. *)
          let col, v, near = List.nth flips (Rng.int rng (List.length flips)) in
          let row = List.nth near (Rng.int rng (List.length near)) in
          Delta.Cell_change { relation; row; col; value = v }
      | rows, _ ->
          let row = List.nth rows (Rng.int rng (List.length rows)) in
          let norm_rel = String.lowercase_ascii relation in
          let this_table_cols =
            List.filter_map
              (fun (t, c) -> if t = norm_rel then Some c else None)
              (Option.value (Hashtbl.find_opt per_query_cells qi) ~default:[])
          in
          (match this_table_cols with
          | [] -> weighted_cell ()
          | cols ->
              let col = List.nth cols (Rng.int rng (List.length cols)) in
              if Rng.float rng 1.0 < config.row_drop_fraction then
                Delta.Row_drop { relation; row }
              else cell_change relation row col)
    in
    let draw () =
      let u = Rng.float rng 1.0 in
      if u < uniform_share then uniform ()
      else if u < uniform_share +. 0.25 then weighted_cell ()
      else targeted ()
    in
    dedup_loop ~rng db ~n ~draw
  end

let materialize db delta = Delta.apply db delta

module Database = Qp_relational.Database
module Query = Qp_relational.Query
module Delta = Qp_relational.Delta
module Delta_eval = Qp_relational.Delta_eval

type stats = {
  queries : int;
  support : int;
  fallback_queries : int;
  failed_queries : (string * string) list;
  strategies : (string * int) list;
  engine : string;
  check_mismatches : int;
  jobs : int;
  query_seconds : float array;
  worker_busy : float array;
  elapsed : float;
}

let conflict_set_prepared prep deltas =
  let hits = ref [] in
  Array.iteri
    (fun i delta -> if Delta_eval.differs prep delta then hits := i :: !hits)
    deltas;
  Array.of_list (List.rev !hits)

let conflict_set db q deltas =
  conflict_set_prepared (Delta_eval.prepare db q) deltas

(* One task per (query, delta-array) row. Each task prepares its own
   query, so no Delta_eval state is shared across domains; [db] and
   [deltas] are only read. The task's return value is a pure function
   of (db, query, deltas) — scheduling cannot influence it. *)
let build_row ?attempt ?engine db deltas index (q, valuation) =
  if Qp_fault.enabled () then
    Qp_fault.maybe_fail ?attempt ~key:index "conflict.query";
  Qp_obs.with_span "conflict.query"
    ~args:(fun () -> [ ("query", Qp_obs.Str q.Query.name) ])
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let prep = Delta_eval.prepare ?engine db q in
  let items = conflict_set_prepared prep deltas in
  Qp_obs.annotate (fun () ->
      [
        ("strategy", Qp_obs.Str (Delta_eval.strategy_name prep));
        ("conflicts", Qp_obs.Int (Array.length items));
      ]);
  ( (q.Query.name, items, valuation),
    Delta_eval.strategy_name prep,
    Unix.gettimeofday () -. t0 )

let hypergraph ?on_progress ?jobs ?engine db valued_queries deltas =
  Qp_obs.with_span "conflict.build"
    ~args:(fun () ->
      [
        ("queries", Qp_obs.Int (List.length valued_queries));
        ("support", Qp_obs.Int (Array.length deltas));
      ])
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (* Resolve the engine here, once: workers inherit it as an explicit
     argument instead of re-reading the process default in their own
     domain, so a concurrent [set_default_engine] cannot split a build
     across engines. *)
  let engine =
    match engine with Some e -> e | None -> Delta_eval.default_engine ()
  in
  let mismatches0 = Delta_eval.check_mismatches () in
  let rows = Array.mapi (fun i r -> (i, r)) (Array.of_list valued_queries) in
  let total = Array.length rows in
  let results, pool =
    Qp_util.Parallel.map_result_stats ?jobs
      (fun (i, row) -> build_row ~engine db deltas i row)
      rows
  in
  (* Sequential index-ordered merge: specs come out in workload order
     whatever the scheduling, so the hypergraph is bit-identical to the
     jobs=1 build. Progress fires only here, on the merge side, which
     keeps [done_] monotone under any worker interleaving. A failed row
     is retried once here, sequentially (attempt 1, so probabilistic
     faults re-draw); a row that fails twice is excluded from the
     hypergraph and reported in [failed_queries] — partial market rather
     than no market. *)
  let by_strategy = Hashtbl.create 4 in
  let query_seconds = Array.make total 0.0 in
  let failed = ref [] in
  let specs = ref [] in
  Array.iteri
    (fun i result ->
      let result =
        match result with
        | Ok r -> Ok r
        | Error { Qp_util.Parallel.message; _ } -> (
            Qp_obs.counter "conflict.query_retries" 1;
            let i, row = rows.(i) in
            match build_row ~attempt:1 ~engine db deltas i row with
            | r -> Ok r
            | exception e -> Error (message, Printexc.to_string e))
      in
      (match result with
      | Ok (spec, strategy, seconds) ->
          query_seconds.(i) <- seconds;
          Hashtbl.replace by_strategy strategy
            (1 + Option.value (Hashtbl.find_opt by_strategy strategy) ~default:0);
          specs := spec :: !specs
      | Error (first, second) ->
          let q, _ = snd rows.(i) in
          Qp_obs.counter "conflict.query_failures" 1;
          Qp_obs.event "conflict.query_failed"
            ~args:(fun () ->
              [
                ("query", Qp_obs.Str q.Query.name);
                ("error", Qp_obs.Str second);
                ("first_attempt_error", Qp_obs.Str first);
              ]);
          failed := (q.Query.name, second) :: !failed);
      match on_progress with
      | Some f -> f ~done_:(i + 1) ~total
      | None -> ())
    results;
  let specs = Array.of_list (List.rev !specs) in
  let failed_queries = List.rev !failed in
  let h = Qp_core.Hypergraph.create ~n_items:(Array.length deltas) specs in
  let strategies =
    List.sort compare
      (Hashtbl.fold (fun name n acc -> (name, n) :: acc) by_strategy [])
  in
  let check_mismatches = Delta_eval.check_mismatches () - mismatches0 in
  if check_mismatches > 0 then
    Qp_obs.counter "conflict.rel_check_mismatches" check_mismatches;
  let stats =
    {
      queries = total;
      support = Array.length deltas;
      fallback_queries =
        Option.value (Hashtbl.find_opt by_strategy "fallback") ~default:0;
      failed_queries;
      strategies;
      engine = Delta_eval.engine_name engine;
      check_mismatches;
      jobs = pool.Qp_util.Parallel.jobs;
      query_seconds;
      worker_busy = pool.Qp_util.Parallel.busy;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  (* The stats record predates the tracing layer and remains the bench
     API; mirror its deterministic fields onto the span so traces are
     self-contained (elapsed/busy stay wall-clock-only). *)
  Qp_obs.annotate (fun () ->
      ("fallback_queries", Qp_obs.Int stats.fallback_queries)
      :: List.map
           (fun (name, n) -> ("strategy_" ^ name, Qp_obs.Int n))
           strategies);
  Qp_obs.counter "conflict.queries" total;
  (h, stats)

let query_time_histogram ?buckets stats =
  if Array.length stats.query_seconds = 0 then "(no queries)\n"
  else
    let micros =
      Array.map (fun s -> int_of_float (s *. 1e6)) stats.query_seconds
    in
    Qp_util.Histogram.render ~log_scale:true
      (Qp_util.Histogram.create ?buckets micros)

let pp_stats fmt s =
  Format.fprintf fmt
    "%d queries x %d support deltas in %.2fs (%d job%s, %s engine)@."
    s.queries s.support s.elapsed s.jobs
    (if s.jobs = 1 then "" else "s")
    s.engine;
  if s.engine = "check" then
    Format.fprintf fmt "  cross-engine mismatches: %d@." s.check_mismatches;
  Format.fprintf fmt "  strategies: %s@."
    (String.concat ", "
       (List.map (fun (name, n) -> Printf.sprintf "%s %d" name n) s.strategies));
  if s.failed_queries <> [] then
    Format.fprintf fmt "  dropped queries:%s@."
      (String.concat ""
         (List.map
            (fun (name, err) -> Printf.sprintf " %s (%s)" name err)
            s.failed_queries));
  Format.fprintf fmt "  worker busy:%s@."
    (String.concat ""
       (Array.to_list
          (Array.map (Printf.sprintf " %.2fs") s.worker_busy)));
  Format.fprintf fmt "  per-query build time (us, log counts):@.%s@?"
    (query_time_histogram ~buckets:8 s)

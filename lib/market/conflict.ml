module Database = Qp_relational.Database
module Query = Qp_relational.Query
module Delta = Qp_relational.Delta
module Delta_eval = Qp_relational.Delta_eval

type stats = {
  queries : int;
  support : int;
  fallback_queries : int;
  elapsed : float;
}

let conflict_set_prepared prep deltas =
  let hits = ref [] in
  Array.iteri
    (fun i delta -> if Delta_eval.differs prep delta then hits := i :: !hits)
    deltas;
  Array.of_list (List.rev !hits)

let conflict_set db q deltas =
  conflict_set_prepared (Delta_eval.prepare db q) deltas

let hypergraph ?on_progress db valued_queries deltas =
  let t0 = Unix.gettimeofday () in
  let total = List.length valued_queries in
  let fallbacks = ref 0 in
  let specs =
    List.mapi
      (fun i (q, valuation) ->
        let prep = Delta_eval.prepare db q in
        if Delta_eval.strategy_name prep = "fallback" then incr fallbacks;
        let items = conflict_set_prepared prep deltas in
        (match on_progress with
        | Some f -> f ~done_:(i + 1) ~total
        | None -> ());
        (q.Query.name, items, valuation))
      valued_queries
  in
  let h =
    Qp_core.Hypergraph.create ~n_items:(Array.length deltas)
      (Array.of_list specs)
  in
  let stats =
    {
      queries = total;
      support = Array.length deltas;
      fallback_queries = !fallbacks;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  (h, stats)

module Pricing = Qp_core.Pricing
module Hypergraph = Qp_core.Hypergraph
module Rng = Qp_util.Rng

type violation =
  | Not_monotone of { small : int array; large : int array }
  | Not_subadditive of { parts : int array list; whole : int array }

let pp_items fmt items =
  Format.fprintf fmt "{%s}"
    (String.concat "," (Array.to_list (Array.map string_of_int items)))

let pp_violation fmt = function
  | Not_monotone { small; large } ->
      Format.fprintf fmt "monotonicity: p(%a) > p(%a)" pp_items small pp_items
        large
  | Not_subadditive { parts; whole } ->
      Format.fprintf fmt "subadditivity: p(%a) > sum of %d parts" pp_items whole
        (List.length parts)

let eps = 1e-6

let subset a b =
  let sb = Array.to_list b in
  Array.for_all (fun x -> List.mem x sb) a

let union a b =
  Array.of_list (List.sort_uniq compare (Array.to_list a @ Array.to_list b))

let check_pair p a b =
  let pa = Pricing.price_items p a
  and pb = Pricing.price_items p b in
  if subset a b && pa > pb +. eps then
    Some (Not_monotone { small = a; large = b })
  else if subset b a && pb > pa +. eps then
    Some (Not_monotone { small = b; large = a })
  else
    let u = union a b in
    let pu = Pricing.price_items p u in
    if pu > pa +. pb +. eps then
      Some (Not_subadditive { parts = [ a; b ]; whole = u })
    else None

let check_edges p h =
  let edges = Hypergraph.edges h in
  let found = ref None in
  (try
     Array.iter
       (fun (e1 : Hypergraph.edge) ->
         Array.iter
           (fun (e2 : Hypergraph.edge) ->
             if e1.id < e2.id then
               match check_pair p e1.items e2.items with
               | Some v ->
                   found := Some v;
                   raise Exit
               | None -> ())
           edges)
       edges
   with Exit -> ());
  !found

let random_bundle rng n_items =
  if n_items = 0 then [||]
  else
    let size = Rng.int rng (min n_items 16 + 1) in
    Array.of_list (Rng.sample_without_replacement rng size n_items)

let check_random ~rng ~n_items ~trials p =
  let found = ref None in
  (try
     for _ = 1 to trials do
       let a = random_bundle rng n_items and b = random_bundle rng n_items in
       match check_pair p a b with
       | Some v ->
           found := Some v;
           raise Exit
       | None -> ()
     done
   with Exit -> ());
  !found
